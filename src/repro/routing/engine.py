"""The vectorized array-backed routing engine (``engine="fast"``).

Tick-for-tick equivalent to the reference Python loop in
:mod:`repro.routing.simulator` -- same delivery times, same per-link
traffic, same max queue depth -- but every per-tick step is a NumPy
operation over flat arrays instead of a Python scan over dicts:

* queue state is a packet -> directed-edge assignment vector plus a
  per-link occupancy counter (no deques/heaps);
* queue arbitration (FIFO insertion order, or farthest-first with
  insertion-order ties) is a single int64 composite key per packet, so
  picking each link's winner is one ``lexsort`` over waiting packets;
* weak-machine port limits are resolved by ranking each node's occupied
  links by ``(-queue length, edge id)`` -- the same deterministic order
  the reference uses -- with one more ``lexsort``;
* next hops and priorities come from the machine-shared dense
  :class:`~repro.routing.tables.NextHopTables` matrices, so a tick costs
  O(waiting packets) vector work, independent of how many Python-level
  queue objects the reference would have scanned.

The deterministic scan order both engines share is ascending directed
edge id, i.e. lexicographic ``(u, v)``; see docs/PERFORMANCE.md for the
full determinism contract.

:func:`route_many` stacks K *independent* runs over the same machine
into one instance of that tick loop by offsetting run ``k``'s directed
edge ids by ``k * num_edges``: queues of different runs can never
collide, so one lexsort arbitrates every queue of every still-active
run at once, and the per-tick NumPy dispatch overhead amortizes across
the whole batch.  Per-run enqueue sequence counters, ``max_queue``
maxima, and ``max_ticks`` budgets keep each run's observables
bit-identical to routing it alone (see docs/PERFORMANCE.md, "The
batched multi-run kernel").
"""

from __future__ import annotations

import numpy as np

from repro.obs import trace as obs
from repro.routing.tables import NextHopTables
from repro.topologies.base import Machine

__all__ = ["flatten_legs", "group_releases", "route_fast", "route_many"]


def flatten_legs(
    legs: list[list[int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The shared flat itinerary layout every kernel consumes.

    Returns ``(leg_flat, leg_ptr, leg_len, fin)``: the concatenated
    waypoint stream, the packet offsets into it, per-packet waypoint
    counts, and each packet's final destination.  ``route_fast``, the
    event engine, and the compiled kernels all index packet state
    through this one layout, so itinerary semantics cannot drift
    between them.
    """
    npkts = len(legs)
    # Uniform-length itineraries (every shortest-path batch) take the
    # 2-D array fast path; ragged ones fall back to the generator scan.
    try:
        as2d = np.asarray(legs, dtype=np.int64)
    except ValueError:
        as2d = None
    if as2d is not None and as2d.ndim == 2:
        width = as2d.shape[1]
        leg_flat = as2d.ravel()
        leg_len = np.full(npkts, width, dtype=np.int64)
        leg_ptr = np.arange(npkts + 1, dtype=np.int64) * width
        return leg_flat, leg_ptr, leg_len, as2d[:, -1].copy()
    leg_len = np.fromiter((len(leg) for leg in legs), dtype=np.int64, count=npkts)
    leg_ptr = np.zeros(npkts + 1, dtype=np.int64)
    np.cumsum(leg_len, out=leg_ptr[1:])
    leg_flat = np.fromiter(
        (x for leg in legs for x in leg), dtype=np.int64, count=int(leg_ptr[-1])
    )
    fin = leg_flat[leg_ptr[1:] - 1]
    return leg_flat, leg_ptr, leg_len, fin


def group_releases(
    travelling: np.ndarray, release: np.ndarray
) -> dict[int, np.ndarray]:
    """Group not-yet-released packets by release tick, pids ascending.

    The per-tick chunks replay the reference engine's injection order:
    within one tick, packets enter ascending by packet id.
    """
    later = travelling[release[travelling] > 0]
    pending: dict[int, np.ndarray] = {}
    if len(later):
        order = np.lexsort((later, release[later]))
        later = later[order]
        times, starts = np.unique(release[later], return_index=True)
        for t, chunk in zip(times, np.split(later, starts[1:])):
            pending[int(t)] = chunk
    return pending


def route_fast(
    machine: Machine,
    tables: NextHopTables,
    legs: list[list[int]],
    release_times: list[int],
    max_ticks: int,
    policy: str,
    validate: bool = False,
) -> tuple[int, np.ndarray, dict[tuple[int, int], int], int]:
    """Route collapsed itineraries; returns (total_time, delivery_times,
    edge_traffic, max_queue) exactly as the reference engine would."""
    npkts = len(legs)
    csr = machine.csr_adjacency()
    dense = tables.ensure_dense()
    dist, next_eid = dense.dist, dense.next_eid
    edge_src, edge_dst = csr.edge_src, csr.edge_dst
    num_edges = csr.num_directed_edges
    port_limit = machine.port_limit
    fifo = policy == "fifo"
    n = machine.num_nodes
    prio_base = np.int64(n) << 32  # priorities fit: distances < n < 2^31

    # Flattened itineraries (the shared layout; see flatten_legs).
    leg_flat, leg_ptr, leg_len, fin = flatten_legs(legs)

    stage = np.ones(npkts, dtype=np.int64)
    delivered = np.full(npkts, -1, dtype=np.int64)
    edge = np.full(npkts, -1, dtype=np.int64)  # queue each packet waits in
    comp = np.zeros(npkts, dtype=np.int64)  # arbitration key within queue
    qlen = np.zeros(num_edges, dtype=np.int64)
    traffic = np.zeros(num_edges, dtype=np.int64)
    max_queue = 0
    seq = 0  # global enqueue sequence (FIFO order / priority ties)

    def enqueue(pids: np.ndarray, at_nodes: np.ndarray) -> None:
        """Append packets to the queue of their next-hop link, in order."""
        nonlocal seq, max_queue
        target = leg_flat[leg_ptr[pids] + stage[pids]]
        eids = next_eid[at_nodes, target].astype(np.int64)
        edge[pids] = eids
        seqs = np.arange(seq, seq + len(pids), dtype=np.int64)
        seq += len(pids)
        if fifo:
            comp[pids] = seqs
        else:
            # (-remaining distance, seq) ascending == farthest-first with
            # insertion-order ties, as one int64 composite.
            rem = dist[at_nodes, fin[pids]].astype(np.int64)
            comp[pids] = (prio_base - (rem << 32)) | seqs
        np.add.at(qlen, eids, 1)
        max_queue = max(max_queue, int(qlen[eids].max()))

    # Injection bookkeeping: self-messages deliver instantly; release-0
    # packets enqueue before the clock starts; the rest wait in `pending`.
    release = np.asarray(release_times, dtype=np.int64)
    is_self = (leg_len == 2) & (leg_flat[leg_ptr[:-1]] == fin)
    delivered[is_self] = release[is_self]
    travelling = np.nonzero(~is_self)[0]
    undelivered = len(travelling)
    now = travelling[release[travelling] == 0]
    if len(now):
        enqueue(now, leg_flat[leg_ptr[now]])
    pending = group_releases(travelling, release)

    tracer = obs.get_tracer()  # hoisted: the loop body must stay lean
    tick = 0
    while undelivered > 0:
        tick += 1
        if tracer is not None and tick % 1024 == 0:
            tracer.event(
                "route.progress",
                engine="fast",
                tick=tick,
                undelivered=undelivered,
                max_queue=max_queue,
            )
        injected = pending.pop(tick, None)
        if injected is not None:
            enqueue(injected, leg_flat[leg_ptr[injected]])
        if tick > max_ticks:
            raise RuntimeError(
                f"routing did not finish in {max_ticks} ticks "
                f"({undelivered} packets left)"
            )
        waiting = np.nonzero(edge >= 0)[0]
        if not len(waiting):
            continue  # everything in flight is awaiting injection

        # Winner of each occupied link: first by arbitration key.
        wedge = edge[waiting]
        order = np.lexsort((comp[waiting], wedge))
        sorted_pkts, sorted_edges = waiting[order], wedge[order]
        head = np.empty(len(sorted_edges), dtype=bool)
        head[0] = True
        head[1:] = sorted_edges[1:] != sorted_edges[:-1]
        movers, medges = sorted_pkts[head], sorted_edges[head]  # edge-id order

        if port_limit is not None:
            # Weak machine: each node serves its port_limit busiest links
            # (ties by edge id == lexicographic (u, v)).
            nodes = edge_src[medges].astype(np.int64)
            rank_order = np.lexsort((medges, -qlen[medges], nodes))
            nodes_sorted = nodes[rank_order]
            group_start = np.empty(len(nodes_sorted), dtype=bool)
            group_start[0] = True
            group_start[1:] = nodes_sorted[1:] != nodes_sorted[:-1]
            within = np.arange(len(nodes_sorted)) - np.maximum.accumulate(
                np.where(group_start, np.arange(len(nodes_sorted)), 0)
            )
            keep = np.zeros(len(medges), dtype=bool)
            keep[rank_order[within < port_limit]] = True
            movers, medges = movers[keep], medges[keep]

        if validate:
            if len(np.unique(medges)) != len(medges):
                raise AssertionError(
                    f"tick {tick}: a directed link moved two packets"
                )
            if port_limit is not None and len(medges):
                sends = np.bincount(edge_src[medges], minlength=n)
                if sends.max() > port_limit:
                    raise AssertionError(
                        f"tick {tick}: a weak node drove {sends.max()} links"
                    )

        qlen[medges] -= 1
        traffic[medges] += 1

        # Arrivals, processed in ascending edge-id order (the shared
        # deterministic scan order -- it fixes enqueue sequence numbers).
        arrive = edge_dst[medges].astype(np.int64)
        target = leg_flat[leg_ptr[movers] + stage[movers]]
        at_last = stage[movers] == leg_len[movers] - 1
        done = (arrive == fin[movers]) & at_last
        advance = (arrive == target) & ~done
        if advance.any():
            stage[movers[advance]] += 1
            adv_p = movers[advance]
            done[advance] = (arrive[advance] == fin[adv_p]) & (
                stage[adv_p] == leg_len[adv_p] - 1
            )
        if done.any():
            done_p = movers[done]
            delivered[done_p] = tick
            edge[done_p] = -1
            undelivered -= len(done_p)
        if not done.all():
            enqueue(movers[~done], arrive[~done])

    nonzero = np.nonzero(traffic)[0]
    edge_traffic = {
        (int(edge_src[e]), int(edge_dst[e])): int(traffic[e]) for e in nonzero
    }
    return tick, delivered, edge_traffic, max_queue


def route_many(
    machine: Machine,
    tables: NextHopTables,
    runs: list[tuple[list[list[int]], list[int], int]],
    policy: str,
    validate: bool = False,
) -> list[tuple[int, np.ndarray, dict[tuple[int, int], int], int]]:
    """Route K independent runs over one shared tick loop.

    ``runs`` is a list of ``(legs, release_times, max_ticks)`` triples,
    each exactly the per-run arguments :func:`route_fast` takes.  The
    return value is one ``(total_time, delivery_times, edge_traffic,
    max_queue)`` tuple per run, bit-identical to what :func:`route_fast`
    would have produced for that run alone.

    Batching works because runs never share queues: run ``k`` lives on
    virtual directed edges ``local_eid + k * num_edges`` (and, for weak
    machines, virtual nodes ``src + k * n``), so arbitration decisions
    can only involve packets of one run.  Determinism then reduces to
    per-run enqueue sequence counters: every bulk enqueue receives its
    packets in ascending virtual-edge order, which is run-major order,
    so each run's slice of the batch replays the exact enqueue sequence
    -- and therefore the exact FIFO / priority tie-break keys -- of its
    solo execution.

    Unlike :func:`route_fast`, which lexsorts every waiting packet every
    tick, this kernel maintains the waiting set as one array permanently
    sorted by a packed ``(virtual edge, priority, sequence)`` int64 key:
    each tick appends only the newly enqueued packets and restores order
    with a stable sort of the nearly-sorted whole (timsort makes that a
    cheap merge), and because the array is grouped by edge with group
    sizes equal to the queue-occupancy counters, every queue's winner is
    read off with one exclusive cumulative sum -- no per-tick lexsort of
    per-packet state at all.
    """
    K = len(runs)
    if K == 0:
        return []
    csr = machine.csr_adjacency()
    dense = tables.ensure_dense()
    dist, next_eid = dense.dist, dense.next_eid
    edge_src, edge_dst = csr.edge_src, csr.edge_dst
    num_edges = csr.num_directed_edges
    port_limit = machine.port_limit
    fifo = policy == "fifo"
    n = machine.num_nodes

    sizes = np.fromiter((len(r[0]) for r in runs), dtype=np.int64, count=K)
    run_ptr = np.zeros(K + 1, dtype=np.int64)
    np.cumsum(sizes, out=run_ptr[1:])
    npkts = int(run_ptr[-1])
    run_of = np.repeat(np.arange(K, dtype=np.int64), sizes)
    run_max_ticks = np.fromiter((r[2] for r in runs), dtype=np.int64, count=K)

    # Flattened itineraries, run-major: packet ids ascend with run id.
    all_legs = [leg for r in runs for leg in r[0]]
    if npkts == 0:
        return [(0, np.zeros(0, dtype=np.int64), {}, 0)] * K
    leg_flat, leg_ptr, leg_len, fin = flatten_legs(all_legs)
    release = np.concatenate(
        [np.asarray(r[1], dtype=np.int64) for r in runs if len(r[0])]
    )

    # Pack (edge, priority, seq) into int64 bit fields.  A packet is
    # enqueued once per hop it traverses, so each run's shortest-path hop
    # count bounds its sequence counter exactly.
    inner = np.ones(len(leg_flat), dtype=bool)
    inner[leg_ptr[1:] - 1] = False
    ai = np.nonzero(inner)[0]
    pair_hops = dist[leg_flat[ai], leg_flat[ai + 1]].astype(np.int64)
    pair_run = run_of[np.repeat(np.arange(npkts, dtype=np.int64), leg_len - 1)]
    run_hops = np.bincount(pair_run, weights=pair_hops, minlength=K).astype(
        np.int64
    )
    total_hops = int(run_hops.sum())
    seq_bits = max(total_hops, 1).bit_length()
    prio_bits = 0 if fifo else max(n - 1, 1).bit_length()
    edge_shift = seq_bits + prio_bits
    if (K * num_edges - 1).bit_length() + edge_shift > 62:
        # Key would overflow the packed int64 -- fall back to routing
        # sequentially (still bit-identical, just not batched).
        return [
            route_fast(machine, tables, r[0], r[1], r[2], policy, validate)
            for r in runs
        ]
    seq_bits64 = np.int64(seq_bits)
    edge_shift64 = np.int64(edge_shift)
    n64 = np.int64(n)
    # Direct itineraries (every shortest-path / dimension-order batch)
    # have one leg and never advance stages: fin IS the next target.
    direct = bool((leg_len == 2).all())

    # Virtual-edge lookup tables: destination node, and (node, run) id.
    vdst = np.tile(edge_dst.astype(np.int64), K)
    vnode = np.tile(edge_src.astype(np.int64), K) + np.repeat(
        np.arange(K, dtype=np.int64) * n, num_edges
    )

    # The waiting set is represented by *keys alone*: the packet behind a
    # key is recovered through its sequence number, so the tick loop
    # never has to keep a pid array aligned with the sorted keys.  Run
    # counters start at disjoint offsets (the exclusive cumulative hop
    # sum), which keeps per-run numbering AND gives a global unique seq.
    seq_mask = np.int64((1 << seq_bits) - 1)
    seq_base = np.cumsum(run_hops) - run_hops
    pid_by_seq = np.empty(total_hops + 1, dtype=np.int64)

    # Pre-shifted per-(node, dest) lookup matrices collapse the per-hop
    # key arithmetic to one gather each.  Skipped on huge machines where
    # the int64 copies would dwarf the dense tables themselves.
    if n <= 2048:
        eid64 = (next_eid.astype(np.int64) << edge_shift64)
        prio64 = (
            None
            if fifo
            else (n64 - 1 - dist.astype(np.int64)) << seq_bits64
        )
    else:
        eid64 = prio64 = None

    stage = np.ones(npkts, dtype=np.int64)
    delivered = np.full(npkts, -1, dtype=np.int64)
    qlen = np.zeros(K * num_edges, dtype=np.int64)
    traffic = np.zeros(K * num_edges, dtype=np.int64)
    edge_base = run_of * num_edges
    qpeak = np.zeros(K * num_edges, dtype=np.int64)  # high-water marks
    run_seq = seq_base.copy()  # per-run enqueue sequence (offset blocks)
    run_total = np.zeros(K, dtype=np.int64)
    new_keys: list[np.ndarray] = []  # keys enqueued since the last merge

    def enqueue(pids: np.ndarray, at_nodes: np.ndarray) -> None:
        """Append packets (in ascending run-major order) to their queues."""
        if not len(pids):
            return
        if direct:
            target = fin[pids]
        else:
            target = leg_flat[leg_ptr[pids] + stage[pids]]
        # Per-run sequence numbers: `pids` ascend, so run ids are grouped
        # and non-decreasing (run j's group starts at the exclusive
        # cumulative count); number each group from its run's counter.
        r = run_of[pids]
        cnt = np.bincount(r, minlength=K)
        ex = np.cumsum(cnt) - cnt
        seqs = run_seq[r] + np.arange(len(r), dtype=np.int64) - ex[r]
        np.add(run_seq, cnt, out=run_seq)
        pid_by_seq[seqs] = pids
        if eid64 is not None:
            ekeys = eid64[at_nodes, target] + (edge_base[pids] << edge_shift64)
            eids = ekeys >> edge_shift64
            if fifo:
                keys = ekeys | seqs
            else:
                keys = ekeys | prio64[at_nodes, fin[pids]] | seqs
        else:
            eids = next_eid[at_nodes, target].astype(np.int64) + edge_base[pids]
            if fifo:
                keys = (eids << edge_shift64) | seqs
            else:
                # Ascending (n-1-rem, seq) == farthest-first with
                # insertion-order ties, matching route_fast's key order.
                rem = dist[at_nodes, fin[pids]].astype(np.int64)
                keys = (
                    (eids << edge_shift64)
                    | ((n64 - 1 - rem) << seq_bits64)
                    | seqs
                )
        # A queue's occupancy peaks right after a bulk add touching it,
        # so an element-wise running max over add events reproduces the
        # per-enqueue max the solo engine tracks.  Every enqueued packet
        # eventually crosses its link, so traffic is the enqueue count.
        bc = np.bincount(eids, minlength=len(qlen))
        np.add(qlen, bc, out=qlen)
        np.add(traffic, bc, out=traffic)
        np.maximum(qpeak, qlen, out=qpeak)
        new_keys.append(keys)

    # Injection bookkeeping, exactly as in route_fast but run-major.
    is_self = (leg_len == 2) & (leg_flat[leg_ptr[:-1]] == fin)
    delivered[is_self] = release[is_self]
    travelling = np.nonzero(~is_self)[0]
    run_undeliv = np.bincount(run_of[travelling], minlength=K).astype(np.int64)
    undelivered = len(travelling)
    now = travelling[release[travelling] == 0]
    if len(now):
        enqueue(now, leg_flat[leg_ptr[now]])
    pending = group_releases(travelling, release)

    tracer = obs.get_tracer()  # hoisted: the loop body must stay lean
    budget_floor = int(run_max_ticks.min())
    okey = np.zeros(0, dtype=np.int64)  # waiting keys, sorted throughout
    tick = 0
    while undelivered > 0:
        tick += 1
        if tracer is not None and tick % 1024 == 0:
            tracer.event(
                "route.progress",
                engine="batch",
                tick=tick,
                undelivered=undelivered,
                active_runs=int((run_undeliv > 0).sum()),
            )
        injected = pending.pop(tick, None)
        if injected is not None:
            enqueue(injected, leg_flat[leg_ptr[injected]])
        if tick > budget_floor:  # cheap python guard; arrays only if near
            over = (tick > run_max_ticks) & (run_undeliv > 0)
            if over.any():
                k = int(np.nonzero(over)[0][0])
                raise RuntimeError(
                    f"routing did not finish in {int(run_max_ticks[k])} "
                    f"ticks ({int(run_undeliv[k])} packets left)"
                )

        # Merge the tick's new packets into the maintained sorted order.
        # Keys are unique, and a stable sort of an almost-sorted array is
        # near-linear, so this replaces route_fast's per-tick lexsort.
        if new_keys:
            candk = np.concatenate([okey, *new_keys])
            new_keys.clear()
            okey = candk[np.argsort(candk, kind="stable")]
        if not len(okey):
            continue  # everything in flight is awaiting injection

        # Winner of each occupied virtual link = front of its block: the
        # key array is grouped by edge with block sizes qlen[occupied],
        # so block fronts are an exclusive cumulative sum away; the low
        # key bits then name the winning packet via its run's seq table.
        occ = np.flatnonzero(qlen)
        counts = qlen[occ]
        fronts = np.cumsum(counts) - counts
        medges = occ
        wkeys = okey[fronts]
        movers = pid_by_seq[wkeys & seq_mask]

        if port_limit is not None:
            # Weak machine: each *virtual* node (node, run) serves its
            # port_limit busiest links, ties by edge id -- runs can never
            # share a virtual node, so this matches the solo ranking.
            # Losing queues keep their front packet in place.
            vnodes = vnode[medges]
            rank_order = np.lexsort((medges, -counts, vnodes))
            nodes_sorted = vnodes[rank_order]
            group_start = np.empty(len(nodes_sorted), dtype=bool)
            group_start[0] = True
            group_start[1:] = nodes_sorted[1:] != nodes_sorted[:-1]
            within = np.arange(len(nodes_sorted)) - np.maximum.accumulate(
                np.where(group_start, np.arange(len(nodes_sorted)), 0)
            )
            keep = np.zeros(len(medges), dtype=bool)
            keep[rank_order[within < port_limit]] = True
            movers, medges, fronts = movers[keep], medges[keep], fronts[keep]

        if validate:
            if len(np.unique(medges)) != len(medges):
                raise AssertionError(
                    f"tick {tick}: a directed link moved two packets"
                )
            if port_limit is not None and len(medges):
                sends = np.bincount(vnode[medges], minlength=K * n)
                if sends.max() > port_limit:
                    raise AssertionError(
                        f"tick {tick}: a weak node drove {sends.max()} links"
                    )

        qlen[medges] -= 1
        stay = np.ones(len(okey), dtype=bool)
        stay[fronts] = False
        okey = okey[stay]  # winners leave; the rest keep their order

        # Arrivals, in ascending virtual-edge order == run-major order ==
        # each run's solo ascending edge-id scan order.
        arrive = vdst[medges]
        done = arrive == fin[movers]
        if not direct:
            at_last = stage[movers] == leg_len[movers] - 1
            done &= at_last
            target = leg_flat[leg_ptr[movers] + stage[movers]]
            advance = (arrive == target) & ~done
            if np.count_nonzero(advance):
                adv_p = movers[advance]
                stage[adv_p] += 1
                done[advance] = (arrive[advance] == fin[adv_p]) & (
                    stage[adv_p] == leg_len[adv_p] - 1
                )
        ndone = int(np.count_nonzero(done))
        if ndone:
            done_p = movers[done]
            delivered[done_p] = tick
            dec = np.bincount(run_of[done_p], minlength=K)
            run_undeliv -= dec
            undelivered -= ndone
            finished = (dec > 0) & (run_undeliv == 0)
            run_total[finished] = tick  # a solo run's loop ends here
        if ndone < len(done):
            enqueue(movers[~done], arrive[~done])

    results = []
    for k in range(K):
        lo, hi = int(run_ptr[k]), int(run_ptr[k + 1])
        tr = traffic[k * num_edges : (k + 1) * num_edges]
        nz = np.flatnonzero(tr)
        edge_traffic = dict(
            zip(
                zip(edge_src[nz].tolist(), edge_dst[nz].tolist()),
                tr[nz].tolist(),
            )
        )
        results.append(
            (
                int(run_total[k]),
                delivered[lo:hi].copy(),
                edge_traffic,
                int(qpeak[k * num_edges : (k + 1) * num_edges].max()),
            )
        )
    return results
