"""Operational bandwidth measurement (the paper's functional definition).

``beta(M, pi)`` is the expected average delivery rate ``m / T(m)`` in the
limit of a large batch ``m`` of messages drawn from ``pi`` (Theorem 6
shows it equals the graph-theoretic ``E(T_pi)/C(M, T_pi)`` to within
Theta).  :func:`measure_bandwidth` estimates it by routing concrete
batches on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import trace as obs
from repro.routing.simulator import RoutingResult, RoutingSimulator
from repro.routing.dimension_order import dimension_order_route
from repro.routing.strategies import shortest_path_route, valiant_route
from repro.topologies.base import Machine
from repro.traffic.distribution import TrafficDistribution, symmetric_traffic
from repro.util import check_positive_int, rng_from_seed

__all__ = [
    "BandwidthMeasurement",
    "measure_bandwidth",
    "measure_bandwidth_many",
    "measure_bandwidth_job",
    "measure_bandwidth_batch_job",
]

_STRATEGIES = ("shortest", "valiant", "dimension_order")


@dataclass(frozen=True)
class BandwidthMeasurement:
    """An empirical bandwidth estimate and the run it came from."""

    machine_name: str
    traffic_name: str
    strategy: str
    num_messages: int
    total_time: int
    rate: float
    max_edge_traffic: int
    mean_latency: float

    def __str__(self) -> str:
        return (
            f"beta^({self.machine_name}, {self.traffic_name}) ~ {self.rate:.3f} "
            f"({self.num_messages} msgs / {self.total_time} ticks, {self.strategy})"
        )


def measure_bandwidth(
    machine: Machine,
    traffic: TrafficDistribution | None = None,
    num_messages: int | None = None,
    strategy: str = "shortest",
    policy: str = "farthest",
    seed: int | np.random.Generator | None = None,
    engine: str = "fast",
    workload=None,
    workload_params: dict | None = None,
) -> BandwidthMeasurement:
    """Estimate the operational bandwidth of ``machine`` under ``traffic``.

    Defaults: symmetric traffic (the distribution defining ``beta(M)``)
    and a batch of ``8 * n`` messages, which is deep enough to saturate
    the bottleneck links of every family in the registry while staying
    laptop-fast.  ``engine`` selects the simulator implementation
    (any of ``"fast"``, ``"reference"``, ``"event"``, ``"compiled"``,
    ``"auto"``; all give identical results -- see docs/PERFORMANCE.md
    for when each wins).  ``workload`` names a registered scenario (a
    :mod:`repro.workloads` key or built ``Workload``) as an alternative
    to passing ``traffic`` directly; the two are mutually exclusive.
    """
    rng = rng_from_seed(seed)
    traffic, num_messages = _validated(
        machine, traffic, num_messages, strategy, workload, workload_params
    )

    with obs.span(
        "measure_bandwidth",
        machine=machine.name,
        strategy=strategy,
        num_messages=num_messages,
    ) as sp:
        with obs.span("measure.sample"):
            messages = traffic.sample_messages(num_messages, seed=rng)
        with obs.span("measure.plan", strategy=strategy):
            if strategy == "shortest":
                itineraries = shortest_path_route(machine, messages)
            elif strategy == "dimension_order":
                itineraries = dimension_order_route(machine, messages)
            else:
                itineraries = valiant_route(machine, messages, seed=rng)

        sim = RoutingSimulator(machine, policy=policy, engine=engine)
        result: RoutingResult = sim.route(itineraries)
        sp.set(ticks=result.total_time, rate=round(result.delivery_rate, 4))
    return BandwidthMeasurement(
        machine_name=machine.name,
        traffic_name=traffic.name,
        strategy=strategy,
        num_messages=num_messages,
        total_time=result.total_time,
        rate=result.delivery_rate,
        max_edge_traffic=result.max_edge_traffic,
        mean_latency=result.mean_latency,
    )


def _validated(machine, traffic, num_messages, strategy, workload=None,
               workload_params=None):
    """Shared front half of the single and batched measurements."""
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    n = machine.num_nodes
    if workload is not None:
        if traffic is not None:
            raise ValueError("pass either traffic or workload, not both")
        from repro.workloads.registry import resolve_workload

        traffic = resolve_workload(workload, n, workload_params).traffic
    elif workload_params:
        raise ValueError("workload params given without a workload key")
    if traffic is None:
        traffic = symmetric_traffic(n)
    if traffic.n != n:
        raise ValueError(
            f"traffic is over {traffic.n} nodes but machine has {n}"
        )
    if num_messages is None:
        num_messages = 8 * n
    check_positive_int(num_messages, "num_messages")
    return traffic, num_messages


def measure_bandwidth_many(
    machine: Machine,
    seeds: list[int],
    traffic: TrafficDistribution | None = None,
    num_messages: int | None = None,
    strategy: str = "shortest",
    policy: str = "farthest",
    engine: str = "fast",
    workload=None,
    workload_params: dict | None = None,
) -> list[BandwidthMeasurement]:
    """Batched :func:`measure_bandwidth` across many seeds.

    Returns one :class:`BandwidthMeasurement` per seed, each
    **bit-identical** to ``measure_bandwidth(machine, seed=s, ...)`` on
    that seed alone.  The shared work is paid once instead of per seed:
    the traffic distribution is built once, the dense next-hop tables
    are reused, and on the fast engine all runs share one vectorized
    tick loop (:meth:`RoutingSimulator.route_batch`), so an 8-seed
    replication costs far less than 8 sequential measurements.
    """
    traffic, num_messages = _validated(
        machine, traffic, num_messages, strategy, workload, workload_params
    )
    with obs.span(
        "measure_bandwidth.many",
        machine=machine.name,
        strategy=strategy,
        runs=len(seeds),
        num_messages=num_messages,
    ):
        batches = []
        draw = traffic.sampler()  # hoist the per-call O(support) setup
        for seed in seeds:
            rng = rng_from_seed(seed)
            with obs.span("measure.sample"):
                messages = draw(num_messages, seed=rng)
            with obs.span("measure.plan", strategy=strategy):
                if strategy == "shortest":
                    itineraries = shortest_path_route(machine, messages)
                elif strategy == "dimension_order":
                    itineraries = dimension_order_route(machine, messages)
                else:
                    itineraries = valiant_route(machine, messages, seed=rng)
            batches.append(itineraries)

        sim = RoutingSimulator(machine, policy=policy, engine=engine)
        results = sim.route_batch(batches)
    return [
        BandwidthMeasurement(
            machine_name=machine.name,
            traffic_name=traffic.name,
            strategy=strategy,
            num_messages=num_messages,
            total_time=result.total_time,
            rate=result.delivery_rate,
            max_edge_traffic=result.max_edge_traffic,
            mean_latency=result.mean_latency,
        )
        for result in results
    ]


def measure_bandwidth_job(spec: dict) -> dict:
    """Harness job entry point for :func:`measure_bandwidth`.

    The spec is total (registered as the ``measure_bandwidth`` alias in
    :mod:`repro.harness.jobs`): ``family`` is required; ``size`` (256),
    ``strategy`` (``"shortest"``), ``policy`` (``"farthest"``),
    ``num_messages`` (the ``8n`` default), ``seed`` (0) and ``engine``
    (``"fast"``) are optional, as are ``workload`` (a scenario key,
    default symmetric) and ``workload_params`` -- both omitted from the
    spec (and hence the content hash) when unused, so pre-workload cache
    entries stay valid.  Returns a JSON-serializable dict; given the
    same spec the values are bit-identical in any process.
    """
    from repro.topologies.registry import family_spec

    machine = family_spec(spec["family"]).build_with_size(int(spec.get("size", 256)))
    meas = measure_bandwidth(
        machine,
        num_messages=spec.get("num_messages"),
        strategy=spec.get("strategy", "shortest"),
        policy=spec.get("policy", "farthest"),
        seed=int(spec.get("seed", 0)),
        engine=spec.get("engine", "fast"),
        workload=spec.get("workload"),
        workload_params=spec.get("workload_params"),
    )
    out = {
        "family": spec["family"],
        "machine": meas.machine_name,
        "n": machine.num_nodes,
        "strategy": meas.strategy,
        "num_messages": meas.num_messages,
        "total_time": meas.total_time,
        "rate": meas.rate,
        "max_edge_traffic": meas.max_edge_traffic,
        "mean_latency": meas.mean_latency,
    }
    if spec.get("workload") is not None:
        out["workload"] = spec["workload"]
        out["traffic"] = meas.traffic_name
    return out


def measure_bandwidth_batch_job(spec: dict) -> dict:
    """Harness job entry point for a seed-replicated bandwidth estimate.

    Registered as the ``measure_bandwidth_batch`` alias: ``family`` is
    required; ``size`` (256), ``strategy`` (``"shortest"``), ``policy``
    (``"farthest"``), ``num_messages`` (the ``8n`` default),
    ``replicates`` (8), ``base_seed`` (0), ``engine`` (``"fast"``) and
    ``batch`` (1) are optional.  ``batch=0`` runs the seeds through
    sequential :func:`measure_bandwidth` calls instead of the batched
    kernel; both paths return bit-identical values, so the knob only
    trades wall-clock (and exists so the equivalence is checkable from
    the service).
    """
    from repro.experiments import Replication
    from repro.topologies.registry import family_spec

    machine = family_spec(spec["family"]).build_with_size(int(spec.get("size", 256)))
    replicates = int(spec.get("replicates", 8))
    check_positive_int(replicates, "replicates")
    base_seed = int(spec.get("base_seed", 0))
    seeds = [base_seed + i for i in range(replicates)]
    kwargs = dict(
        num_messages=spec.get("num_messages"),
        strategy=spec.get("strategy", "shortest"),
        policy=spec.get("policy", "farthest"),
        engine=spec.get("engine", "fast"),
        workload=spec.get("workload"),
        workload_params=spec.get("workload_params"),
    )
    if int(spec.get("batch", 1)):
        many = measure_bandwidth_many(machine, seeds, **kwargs)
    else:
        many = [measure_bandwidth(machine, seed=s, **kwargs) for s in seeds]
    rep = Replication(values=tuple(m.rate for m in many))
    out = {
        "family": spec["family"],
        "machine": many[0].machine_name,
        "n": machine.num_nodes,
        "strategy": many[0].strategy,
        "num_messages": many[0].num_messages,
        "replicates": replicates,
        "base_seed": base_seed,
        "rates": [m.rate for m in many],
        "total_times": [m.total_time for m in many],
        "rate_mean": rep.mean,
        "rate_std": rep.std,
        "rate_p50": rep.p50,
        "rate_ci95": rep.ci95,
        "rate_min": rep.min,
        "rate_max": rep.max,
    }
    if spec.get("workload") is not None:
        out["workload"] = spec["workload"]
        out["traffic"] = many[0].traffic_name
    return out
