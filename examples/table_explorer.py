#!/usr/bin/env python
"""Print any of the paper's tables from the command line.

Usage:
    python examples/table_explorer.py table1 [--guest mesh|torus|xgrid] [--j 2]
    python examples/table_explorer.py table2 [--guest mesh_of_trees|multigrid|pyramid] [--j 2]
    python examples/table_explorer.py table3 [--guest de_bruijn|butterfly|...]
    python examples/table_explorer.py table4
    python examples/table_explorer.py pair GUEST_KEY HOST_KEY

The ``pair`` mode answers one cell for arbitrary registry families, e.g.

    python examples/table_explorer.py pair shuffle_exchange pyramid_3
"""

from __future__ import annotations

import argparse

from repro import max_host_size, symbolic_slowdown
from repro.theory import (
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    theorem_guest_time,
)
from repro.util import format_table


def _print_host_table(rows, title):
    print(
        format_table(
            ["host", "maximum host size"],
            [(r.host_display, r.cell()) for r in rows],
            title=title,
        )
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("table", choices=["table1", "table2", "table3", "table4", "pair"])
    ap.add_argument("keys", nargs="*", help="guest/host keys for 'pair' mode")
    ap.add_argument("--guest", default=None, help="guest family stem")
    ap.add_argument("--j", type=int, default=2, help="guest dimension")
    args = ap.parse_args()

    if args.table == "table1":
        guest = args.guest or "mesh"
        rows = generate_table1(j=args.j, guest=guest)
        _print_host_table(
            rows, f"Table 1: efficient emulation of {args.j}-dim {guest} guests"
        )
    elif args.table == "table2":
        guest = args.guest or "mesh_of_trees"
        rows = generate_table2(j=args.j, guest=guest)
        _print_host_table(
            rows, f"Table 2: efficient emulation of {args.j}-dim {guest} guests"
        )
    elif args.table == "table3":
        guest = args.guest or "de_bruijn"
        rows = generate_table3(guest)
        _print_host_table(rows, f"Table 3: efficient emulation of {guest} guests")
    elif args.table == "table4":
        print(
            format_table(
                ["machine", "beta", "Delta"],
                generate_table4(),
                title="Table 4: bandwidth and minimal computation time",
            )
        )
    else:
        if len(args.keys) != 2:
            ap.error("pair mode needs GUEST_KEY and HOST_KEY")
        guest, host = args.keys
        bound = symbolic_slowdown(guest, host)
        size = max_host_size(guest, host)
        tmin = theorem_guest_time(guest)
        print(f"guest {guest}, host {host}:")
        print(f"  {bound}")
        print(f"  maximum efficient host: |H| <= {size.render('|G|')}")
        print(f"  (valid for computations of T_G >= {tmin.render('|G|')} steps)")


if __name__ == "__main__":
    main()
