"""Bandwidth in all three of the paper's guises.

* **closed form** (Table 4): :func:`beta_formula` / :func:`delta_formula`
  return exact :class:`LogPoly` expressions per machine family;
* **graph-theoretic**: ``beta(H, T) = E(T) / C(H, T)``; since minimum
  congestion is NP-hard, :func:`beta_bracket` returns a rigorous
  ``[lower, upper]`` interval (routing congestion above, cut bounds
  below);
* **operational**: the routing-simulator delivery rate, re-exported from
  :mod:`repro.routing`.

Theorem 6 says the three agree to within Theta; the Table-4 bench checks
that numerically for every family.
"""

from repro.bandwidth.betweenness import (
    betweenness_beta_estimate,
    betweenness_congestion,
)
from repro.bandwidth.cuts import bisection_width_upper, flux_beta_upper
from repro.bandwidth.formulas import (
    beta_formula,
    beta_value,
    delta_formula,
    delta_value,
)
from repro.bandwidth.graph_theoretic import (
    BetaBracket,
    beta_bracket,
    beta_lower,
    beta_upper,
    routing_congestion,
)
from repro.bandwidth.lemma10 import lemma10_beta_upper
from repro.bandwidth.lp_bound import lp_beta_upper, lp_min_congestion
from repro.bandwidth.operational import measure_bandwidth
from repro.bandwidth.spectral import algebraic_connectivity, cheeger_bounds

__all__ = [
    "BetaBracket",
    "algebraic_connectivity",
    "beta_bracket",
    "beta_formula",
    "beta_lower",
    "beta_upper",
    "beta_value",
    "betweenness_beta_estimate",
    "betweenness_congestion",
    "bisection_width_upper",
    "cheeger_bounds",
    "delta_formula",
    "delta_value",
    "flux_beta_upper",
    "lemma10_beta_upper",
    "lp_beta_upper",
    "lp_min_congestion",
    "measure_bandwidth",
    "routing_congestion",
]
