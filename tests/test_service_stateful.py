"""Stateful (rule-based) property test of the service cache tiers.

A Hypothesis :class:`RuleBasedStateMachine` interleaves warm/cold
queries, fake-clock TTL expiry, concurrent identical requests, cache
restarts (the memory-tier consequence of a drain/redeploy cycle), and
memory-tier pressure against one :class:`QueryService` over a shared
on-disk store.  The single invariant, checked after every step: **no
sequence of cache transitions may ever change an answer** -- whatever
tier a response comes from, its body equals the cold-computed
reference for that query.

The machine drives :meth:`QueryService.handle` directly (the HTTP
layer is a pass-through tested elsewhere) and injects a fake clock
into the memory tier so TTL expiry is a deliberate rule rather than a
wall-clock race.
"""

from __future__ import annotations

import tempfile
import threading

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis.strategies import floats, integers, sampled_from

from repro.harness import Job, ResultStore, SerialExecutor
from repro.service import QueryService, TTLCache

TTL = 30.0
CACHE_SIZE = 4  # small on purpose: eviction pressure is part of the test

#: The query universe: small machines so cold compute is cheap, more
#: distinct queries than memory-cache slots so eviction happens.
QUERIES = [
    ("mesh_2", 8), ("mesh_2", 16), ("tree", 8), ("tree", 16),
    ("de_bruijn", 8), ("de_bruijn", 16), ("butterfly", 8),
]

_reference_cache: dict[tuple[str, int], dict] = {}


def reference_value(family: str, size: int) -> dict:
    """The cold truth: what the compute path must produce for a query.

    Computed once per (family, size) through the same harness job the
    service builds in ``_h_bandwidth`` (seed/engine defaults applied),
    bypassing every cache tier.
    """
    key = (family, size)
    if key not in _reference_cache:
        job = Job("measure_bandwidth", {
            "family": family, "size": size, "seed": 0, "engine": "fast",
        })
        result = SerialExecutor().run([job])[0]
        assert result.ok, result.error
        _reference_cache[key] = result.value
    return _reference_cache[key]


class CacheTierMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.now = 0.0
        self.tiers_seen: set[str] = set()

    @initialize()
    def boot(self) -> None:
        self.store = ResultStore(tempfile.mkdtemp(prefix="repro-stateful-"))
        self._fresh_service()

    def _fresh_service(self) -> None:
        self.service = QueryService(store=self.store, cache_size=CACHE_SIZE,
                                    ttl=TTL)
        # Same tier, injectable clock: TTL expiry becomes a rule.
        self.service.cache = TTLCache(
            maxsize=CACHE_SIZE, ttl=TTL, clock=lambda: self.now
        )

    def _query(self, family: str, size: int) -> str:
        status, payload = self.service.handle(
            "GET", "/v1/bandwidth",
            {"family": family, "size": str(size)},
        )
        assert status == 200, payload
        tier = payload["meta"]["cache"]
        assert tier in ("memory", "store", "miss", "coalesced"), tier
        assert payload["result"] == reference_value(family, size), (
            f"tier {tier!r} served a value that differs from cold compute "
            f"for {family}/{size}"
        )
        return tier

    @rule(query=sampled_from(QUERIES))
    def single_query(self, query) -> None:
        self.tiers_seen.add(self._query(*query))

    @rule(query=sampled_from(QUERIES), concurrency=integers(2, 4))
    def concurrent_identical_queries(self, query, concurrency) -> None:
        """N identical requests at once: every one must get the same
        correct answer whether it led the compute, coalesced behind
        the leader, or hit a tier."""
        errors: list[BaseException] = []

        def probe() -> None:
            try:
                self.tiers_seen.add(self._query(*query))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=probe) for _ in range(concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

    @rule(dt=floats(min_value=0.1, max_value=2 * TTL))
    def advance_clock(self, dt) -> None:
        """Sometimes past the TTL (memory tier expires, store answers),
        sometimes not (memory entries stay live)."""
        self.now += dt

    @rule()
    def drain_and_restart(self) -> None:
        """A drain/redeploy cycle: the process-local tiers (memory
        cache, single-flight table, metrics) are lost, the disk store
        survives.  Answers must not change across the boundary."""
        self._fresh_service()

    @rule()
    def wipe_memory_tier(self) -> None:
        """Memory tier vanishes mid-flight (e.g. operator flush);
        the store must re-seed it with the same values."""
        self.service.cache.clear()

    @invariant()
    def memory_tier_matches_cold_compute(self) -> None:
        """Every live memory-cache entry equals the cold reference of
        some query we issued -- a torn or cross-keyed entry fails here
        even before the next query would serve it."""
        if not hasattr(self, "service"):
            return
        live = set()
        for family, size in QUERIES:
            job = Job("measure_bandwidth", {
                "family": family, "size": size, "seed": 0, "engine": "fast",
            })
            hit, value = self.service.cache.get(job.job_hash)
            if hit:
                assert value == reference_value(family, size)
                live.add(job.job_hash)
        # No entry outside the query universe can exist.
        assert set(self.service.cache.keys()) <= live

    def teardown(self) -> None:
        if hasattr(self, "service"):
            self.service.cache.clear()


CacheTierMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None,
)
TestCacheTiers = CacheTierMachine.TestCase
