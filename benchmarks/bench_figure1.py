"""Figure 1: communication-induced vs load-induced slowdown.

Regenerates both curves for the paper's running pair (de Bruijn guest on
2-d mesh hosts), asserts the qualitative shape -- the load line
dominates left of the crossover, the bandwidth curve right of it, and
the crossover sits at Theta(lg^2 n) -- and adds *measured* emulation
points from the executable emulator on a small instance, checking every
measured slowdown sits above the theoretical envelope.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro import Emulator, figure1_data
from repro.topologies import build_de_bruijn, build_mesh
from repro.util import format_table


def test_figure1_series(benchmark):
    f1 = benchmark(figure1_data, "de_bruijn", "mesh_2", 2**14)
    assert f1.crossover_numeric == pytest.approx(196.0)
    # Load curve strictly decreasing; bandwidth curve non-increasing.
    assert f1.load_bounds == sorted(f1.load_bounds, reverse=True)
    assert all(
        a >= b for a, b in zip(f1.bandwidth_bounds, f1.bandwidth_bounds[1:])
    )
    # The sign of (load - bandwidth) flips exactly once, at the crossover.
    signs = [l >= b for l, b in zip(f1.load_bounds, f1.bandwidth_bounds)]
    flip = signs.index(False)
    assert all(signs[:flip]) and not any(signs[flip:])
    assert f1.m_values[flip - 1] <= f1.crossover_numeric <= f1.m_values[flip]

    emit(
        format_table(
            ["|H|", "load n/m", "bandwidth beta_G/beta_H", "envelope"],
            [
                (m, f"{l:9.2f}", f"{b:9.2f}", f"{e:9.2f}")
                for (m, l, b, e) in f1.rows()
            ],
            title=(
                "Figure 1: de Bruijn (n=16384) on 2-d mesh hosts; "
                f"crossover {f1.crossover_symbolic.render('n')} ~ "
                f"{f1.crossover_numeric:.0f}"
            ),
        )
    )


@pytest.mark.parametrize("guest_key,host_key,n", [
    ("de_bruijn", "linear_array", 2**14),
    ("mesh_3", "mesh_2", 2**12),
    ("xtree", "tree", 2**12),
])
def test_figure1_other_pairs(guest_key, host_key, n, benchmark):
    f1 = benchmark(figure1_data, guest_key, host_key, n)
    assert 2 <= f1.crossover_numeric <= n


def test_figure1_measured_points(benchmark):
    """Measured emulation slowdowns sit on-or-above the envelope."""
    guest = build_de_bruijn(8)  # n = 256, lg^2 n = 64
    hosts = [build_mesh(s, 2) for s in (3, 4, 6, 8, 12, 16)]

    def run_all():
        return [Emulator(guest, h, seed=0).run(2) for h in hosts]

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for rep in reports:
        envelope = max(rep.load_bound, rep.bandwidth_bound)
        assert rep.slowdown >= 0.9 * envelope, rep
        rows.append(
            (
                rep.host_size,
                f"{rep.load_bound:7.2f}",
                f"{rep.bandwidth_bound:7.2f}",
                f"{rep.slowdown:8.2f}",
            )
        )
    emit(
        format_table(
            ["|H|", "load bound", "bandwidth bound", "measured S"],
            rows,
            title="Figure 1, measured: de Bruijn (n=256) on mesh hosts",
        )
    )
