"""Empirical bottleneck-freeness (the Theorem-1 side condition).

A machine is *bottleneck-free* when no quasi-symmetric distribution (on
any ``m <= |H|`` of its processors) achieves a delivery rate more than a
constant factor above the symmetric rate ``beta(H)``.  The test samples
random quasi-symmetric distributions at several support sizes, measures
each rate on the simulator, and reports the worst ratio.

The paper notes (without proof) that Tree, X-Tree, Mesh, Butterfly,
Shuffle-Exchange and de Bruijn are all bottleneck-free; the Table-4
bench confirms the measured ratios stay O(1) across sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.measure import measure_bandwidth
from repro.topologies.base import Machine
from repro.traffic.distribution import TrafficDistribution, quasi_symmetric_traffic
from repro.util import check_positive_int, rng_from_seed

__all__ = ["BottleneckReport", "bottleneck_freeness"]


@dataclass(frozen=True)
class BottleneckReport:
    """Worst quasi-symmetric-to-symmetric rate ratio observed."""

    machine_name: str
    symmetric_rate: float
    worst_ratio: float
    trials: int

    def is_bottleneck_free(self, factor: float = 8.0) -> bool:
        """True when no sampled distribution beat beta(H) by > factor."""
        return self.worst_ratio <= factor

    def __str__(self) -> str:
        return (
            f"bottleneck({self.machine_name}): worst quasi/symmetric rate "
            f"ratio {self.worst_ratio:.2f} over {self.trials} trials"
        )


def _subset_quasi_symmetric(
    n: int, subset: np.ndarray, fraction: float, rng: np.random.Generator
) -> TrafficDistribution:
    """Quasi-symmetric traffic supported on ``subset`` of the n nodes."""
    m = len(subset)
    base = quasi_symmetric_traffic(m, fraction=fraction, seed=rng)
    pairs = {
        (int(subset[s]), int(subset[d])): w for (s, d), w in base.pairs.items()
    }
    return TrafficDistribution(n, pairs, name=f"quasi_symmetric[m={m}]")


def bottleneck_freeness(
    machine: Machine,
    trials: int = 6,
    messages_per_trial: int | None = None,
    seed: int | None = None,
) -> BottleneckReport:
    """Measure the worst quasi-symmetric rate against the symmetric rate.

    Trials alternate support sizes ``m in {n, n/2, n/4}`` (node subsets
    chosen uniformly) and support fractions ``{0.6, 0.9}`` of the m(m-1)
    pairs, covering the paper's "any quasi-symmetric distribution on
    m <= |H| nodes" quantifier in a sampled way.
    """
    check_positive_int(trials, "trials")
    rng = rng_from_seed(seed)
    n = machine.num_nodes
    sym = measure_bandwidth(
        machine, num_messages=messages_per_trial, seed=rng
    )
    worst = 0.0
    sizes = [n, max(4, n // 2), max(4, n // 4)]
    fractions = [0.6, 0.9]
    for trial in range(trials):
        m = sizes[trial % len(sizes)]
        frac = fractions[(trial // len(sizes)) % len(fractions)]
        subset = (
            np.arange(n) if m >= n else rng.choice(n, size=m, replace=False)
        )
        traffic = _subset_quasi_symmetric(n, subset, frac, rng)
        meas = measure_bandwidth(
            machine, traffic=traffic, num_messages=messages_per_trial, seed=rng
        )
        worst = max(worst, meas.rate / sym.rate if sym.rate > 0 else float("inf"))
    return BottleneckReport(
        machine_name=machine.name,
        symmetric_rate=sym.rate,
        worst_ratio=worst,
        trials=trials,
    )
