"""Prior-work lower bounds the paper compares against (Section 1.2).

* :mod:`koch` -- the distance-based and congestion-based bounds of Koch,
  Leighton, Maggs, Rao & Rosenberg [7];
* :mod:`embedding_based` -- dilation lower bounds from graph-embedding
  results ([2], [6]) that translate into slowdown bounds for
  embedding-style emulations.

The baseline bench sets these against the bandwidth bound on shared
(guest, host) pairs: the bandwidth method matches the congestion method
for non-expander guests and loses only on expander guests -- exactly the
trade-off the paper describes.
"""

from repro.baselines.embedding_based import (
    bhatt_butterfly_dilation_bound,
    ternary_in_binary_dilation_bound,
)
from repro.baselines.koch import (
    koch_butterfly_on_mesh_bound,
    koch_mesh_on_mesh_bound,
    koch_tree_on_mesh_bound,
)

__all__ = [
    "bhatt_butterfly_dilation_bound",
    "koch_butterfly_on_mesh_bound",
    "koch_mesh_on_mesh_bound",
    "koch_tree_on_mesh_bound",
    "ternary_in_binary_dilation_bound",
]
