"""Traffic distributions over ordered processor pairs.

A :class:`TrafficDistribution` is the paper's ``pi``: for each ordered
pair ``(p_i, p_j)`` with ``i != j``, the relative frequency of a message
originating at ``p_i`` destined for ``p_j``.  Internally it is a sparse
dict of pair weights (not necessarily normalised -- only ratios matter),
plus helpers to sample concrete message batches for the routing
simulator.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.util import check_positive_int, rng_from_seed

__all__ = [
    "TrafficDistribution",
    "symmetric_traffic",
    "quasi_symmetric_traffic",
    "permutation_traffic",
    "transpose_traffic",
    "bit_reversal_traffic",
    "hot_spot_traffic",
]


class TrafficDistribution:
    """A weighted distribution over ordered (source, destination) pairs."""

    def __init__(self, n: int, pairs: dict[tuple[int, int], float], name: str = ""):
        check_positive_int(n, "n", minimum=2)
        self.n = n
        self.name = name or "traffic"
        clean: dict[tuple[int, int], float] = {}
        for (s, d), w in pairs.items():
            if not (0 <= s < n and 0 <= d < n):
                raise ValueError(f"pair ({s}, {d}) out of range for n={n}")
            if s == d:
                raise ValueError(f"self-pair ({s}, {d}) not allowed")
            if w < 0:
                raise ValueError(f"negative weight {w} for pair ({s}, {d})")
            if w > 0:
                clean[(s, d)] = float(w)
        if not clean:
            raise ValueError("traffic distribution must have positive support")
        self.pairs = clean

    # -- inspection ----------------------------------------------------------

    @property
    def support_size(self) -> int:
        """Number of ordered pairs with nonzero frequency."""
        return len(self.pairs)

    @property
    def total_weight(self) -> float:
        """Sum of all pair weights."""
        return sum(self.pairs.values())

    def is_quasi_symmetric(self, c: float = 0.01) -> bool:
        """Paper definition: Omega(n^2) pairs have *equal* nonzero
        probability and all other pairs are disallowed.  ``c`` is the
        constant in ``support >= c * n^2``."""
        weights = set(round(w, 12) for w in self.pairs.values())
        return len(weights) == 1 and self.support_size >= c * self.n * self.n

    # -- sampling -------------------------------------------------------------

    def sample_messages(
        self, m: int, seed: int | np.random.Generator | None = None
    ) -> list[tuple[int, int]]:
        """Draw ``m`` (source, destination) messages i.i.d. from ``pi``."""
        return self.sampler()(m, seed)

    def sampler(self):
        """A reusable sampling closure over this distribution.

        The pair list and normalized weight vector are materialized
        once; each call then draws exactly like :meth:`sample_messages`
        (bit-identical given the same rng state), so callers sampling
        many batches from one distribution -- seed replication, offered-
        load sweeps -- skip the per-call O(support) setup.
        """
        keys = list(self.pairs.keys())
        w = np.fromiter(self.pairs.values(), dtype=float, count=len(keys))
        p = w / w.sum()
        support = len(keys)

        def draw(
            m: int, seed: int | np.random.Generator | None = None
        ) -> list[tuple[int, int]]:
            check_positive_int(m, "m")
            rng = rng_from_seed(seed)
            idx = rng.choice(support, size=m, p=p)
            return [keys[i] for i in idx]

        return draw

    def restrict(self, nodes: Iterable[int]) -> "TrafficDistribution":
        """Restriction to pairs entirely inside ``nodes`` (relabelled 0..)."""
        keep = sorted(set(nodes))
        index = {v: i for i, v in enumerate(keep)}
        pairs = {
            (index[s], index[d]): w
            for (s, d), w in self.pairs.items()
            if s in index and d in index
        }
        return TrafficDistribution(len(keep), pairs, name=f"{self.name}|restricted")

    def __repr__(self) -> str:
        return (
            f"TrafficDistribution({self.name}, n={self.n}, "
            f"support={self.support_size})"
        )


def symmetric_traffic(n: int) -> TrafficDistribution:
    """The symmetric distribution: every ordered pair equally likely.

    This is the distribution defining the machine bandwidth beta(M).
    """
    pairs = {(s, d): 1.0 for s in range(n) for d in range(n) if s != d}
    return TrafficDistribution(n, pairs, name="symmetric")


def quasi_symmetric_traffic(
    n: int,
    fraction: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> TrafficDistribution:
    """A random quasi-symmetric distribution: a uniform random subset of
    ``fraction * n * (n-1)`` ordered pairs, all with equal weight."""
    check_positive_int(n, "n", minimum=2)
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = rng_from_seed(seed)
    total = n * (n - 1)
    want = max(1, int(round(fraction * total)))
    chosen = rng.choice(total, size=want, replace=False)
    pairs = {}
    for code in np.asarray(chosen, dtype=np.int64):
        s, r = divmod(int(code), n - 1)
        d = r if r < s else r + 1
        pairs[(s, d)] = 1.0
    return TrafficDistribution(n, pairs, name=f"quasi_symmetric({fraction})")


def permutation_traffic(
    n: int, seed: int | np.random.Generator | None = None
) -> TrafficDistribution:
    """A random fixed-point-free permutation workload."""
    rng = rng_from_seed(seed)
    perm = np.arange(n)
    while True:
        rng.shuffle(perm)
        if not np.any(perm == np.arange(n)):
            break
    pairs = {(i, int(perm[i])): 1.0 for i in range(n)}
    return TrafficDistribution(n, pairs, name="permutation")


def transpose_traffic(n: int) -> TrafficDistribution:
    """Matrix-transpose workload on a square 0..n-1 index space.

    Node ``r * side + c`` talks to ``c * side + r``; requires square n.
    """
    side = int(round(n**0.5))
    if side * side != n:
        raise ValueError(f"transpose traffic needs a square n, got {n}")
    pairs = {}
    for r in range(side):
        for c in range(side):
            s, d = r * side + c, c * side + r
            if s != d:
                pairs[(s, d)] = 1.0
    return TrafficDistribution(n, pairs, name="transpose")


def bit_reversal_traffic(n: int) -> TrafficDistribution:
    """Bit-reversal permutation workload; requires n a power of two."""
    bits = n.bit_length() - 1
    if 2**bits != n:
        raise ValueError(f"bit-reversal traffic needs a power-of-two n, got {n}")
    pairs = {}
    for s in range(n):
        d = int(format(s, f"0{bits}b")[::-1], 2)
        if s != d:
            pairs[(s, d)] = 1.0
    return TrafficDistribution(n, pairs, name="bit_reversal")


def hot_spot_traffic(
    n: int, hot: int = 0, hot_fraction: float = 0.5
) -> TrafficDistribution:
    """Background symmetric traffic plus a hot-spot destination.

    ``hot_fraction`` of the total weight is aimed at node ``hot``.
    """
    check_positive_int(n, "n", minimum=2)
    if not 0 <= hot < n:
        raise ValueError(f"hot node {hot} out of range")
    if not 1.0 / n <= hot_fraction < 1:
        raise ValueError(
            f"hot_fraction must be in [1/n, 1) = [{1.0 / n:.3f}, 1), "
            f"got {hot_fraction}"
        )
    background = n * (n - 1)
    pairs = {(s, d): 1.0 for s in range(n) for d in range(n) if s != d}
    # Solve (n-1) + x = hot_fraction * (background + x) for the total
    # extra weight x aimed at the hot node, so the hot node receives
    # exactly hot_fraction of all traffic.
    extra = (hot_fraction * background - (n - 1)) / (1 - hot_fraction)
    boost = extra / (n - 1)
    for s in range(n):
        if s != hot:
            pairs[(s, hot)] += boost
    return TrafficDistribution(n, pairs, name=f"hot_spot({hot})")
