"""Content-addressed on-disk result store for harness jobs.

Layout: ``root/<salt>/<job_hash>.json``, one file per completed cell.
The **salt** partitions the store by code version: results computed by
one version of the repo are never served to another (bump
:data:`SCHEMA_VERSION` when a job's output format changes; the package
version is folded in automatically).  Within a salt, the job's content
hash is the whole key -- same ``(fn, spec)``, same file.

Reads are defensive: a missing file is a miss, a corrupted or truncated
file is a miss *and* an eviction (the bad file is deleted so it cannot
mask future writes), and a file whose recorded hash disagrees with its
name is treated the same way.  ``hits`` / ``misses`` / ``puts`` /
``evictions`` counters live on :class:`StoreStats` so sweeps can report
cache effectiveness.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.jobs import Job, canonical_json

__all__ = ["SCHEMA_VERSION", "ResultStore", "StoreStats", "default_salt"]

#: Bump when the stored payload format (or any job's output schema)
#: changes incompatibly; it invalidates every cached cell.
SCHEMA_VERSION = 1


def default_salt() -> str:
    """The code-version salt: package version + store schema version."""
    from repro import __version__

    return f"repro-{__version__}-h{SCHEMA_VERSION}"


@dataclass
class StoreStats:
    """Hit/miss/evict counters for one :class:`ResultStore` instance.

    A store is shared between the service's request threads and any
    in-process sweeps, so every increment goes through :meth:`record`
    under one lock and :meth:`as_dict` snapshots under the same lock --
    readers (``GET /metrics``, the observability event sink) always see
    a consistent set of counters.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(
        self,
        hits: int = 0,
        misses: int = 0,
        puts: int = 0,
        evictions: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.puts += puts
            self.evictions += evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready consistent snapshot (for /metrics and benches)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            puts, evictions = self.puts, self.evictions
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "puts": puts,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }


class ResultStore:
    """Content-addressed JSON cache keyed by job hash + code-version salt."""

    def __init__(self, root: str | Path, salt: str | None = None) -> None:
        self.root = Path(root)
        self.salt = salt if salt is not None else default_salt()
        self.stats = StoreStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, salt={self.salt!r})"

    def path_for(self, job: Job) -> Path:
        """Where ``job``'s result lives (whether or not it exists yet)."""
        return self.root / self.salt / f"{job.job_hash}.json"

    def get(self, job: Job) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        Corrupted, truncated, or mismatched files are evicted and
        counted as misses -- never raised to the caller.
        """
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            if (
                not isinstance(payload, dict)
                or payload.get("hash") != job.job_hash
                or payload.get("fn") != job.fn
                or "value" not in payload
            ):
                raise ValueError("cache payload does not match its key")
        except FileNotFoundError:
            self.stats.record(misses=1)
            return False, None
        except (ValueError, OSError):
            self._evict(path)
            self.stats.record(misses=1)
            return False, None
        self.stats.record(hits=1)
        return True, payload["value"]

    def put(self, job: Job, value: Any, seconds: float | None = None) -> Path:
        """Persist ``value`` for ``job`` (atomic write via rename)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fn": job.fn,
            "hash": job.job_hash,
            "spec": job.spec,
            "value": value,
            "seconds": seconds,
            "created": time.time(),
            "salt": self.salt,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(payload))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.record(puts=1)
        return path

    def purge_stale(self) -> int:
        """Delete every cell written under a *different* salt.

        Returns the number of files evicted.  Call this to reclaim disk
        after a version bump; correctness never requires it (stale salts
        are simply never read).
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for child in self.root.iterdir():
            if not child.is_dir() or child.name == self.salt:
                continue
            for cell in child.glob("*.json"):
                cell.unlink(missing_ok=True)
                removed += 1
            try:
                child.rmdir()
            except OSError:
                pass
        self.stats.record(evictions=removed)
        return removed

    def __len__(self) -> int:
        """Number of cells stored under the current salt."""
        cell_dir = self.root / self.salt
        return sum(1 for _ in cell_dir.glob("*.json")) if cell_dir.is_dir() else 0

    def _evict(self, path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
            self.stats.record(evictions=1)
        except OSError:  # pragma: no cover - unlink raced or read-only fs
            pass
