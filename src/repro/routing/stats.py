"""Link-level statistics for routing runs.

The simulator reports aggregate time and per-link traffic;
:func:`link_stats` turns that into the quantities interconnection-
network papers plot: utilisation (busy ticks / total ticks per link),
the load-imbalance ratio (max/mean -- 1.0 is perfectly balanced, and
under symmetric traffic it approximates the ratio between a machine's
worst cut and its average link), and a Jain fairness index over links.

These feed the routing ablation: farthest-first arbitration and
path-spreading tie-breaks are visible as improved balance long before
they change the Theta of the delivery rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.simulator import RoutingResult
from repro.topologies.base import Machine

__all__ = ["LinkStats", "link_stats"]


@dataclass(frozen=True)
class LinkStats:
    """Per-run link utilisation summary."""

    num_links: int
    total_time: int
    mean_utilisation: float
    max_utilisation: float
    imbalance: float  # max load / mean load over used links
    jain_fairness: float  # (sum x)^2 / (n * sum x^2) over all links
    idle_links: int

    def __str__(self) -> str:
        return (
            f"links={self.num_links} util mean {self.mean_utilisation:.2f} "
            f"max {self.max_utilisation:.2f}, imbalance {self.imbalance:.2f}, "
            f"fairness {self.jain_fairness:.2f}, idle {self.idle_links}"
        )


def link_stats(machine: Machine, result: RoutingResult) -> LinkStats:
    """Summarise a :class:`RoutingResult` over the machine's links.

    Directed traffic is folded onto undirected links (a link busy in
    both directions counts both crossings).
    """
    loads: dict[tuple[int, int], int] = {}
    for (u, v), w in result.edge_traffic.items():
        key = (u, v) if u < v else (v, u)
        loads[key] = loads.get(key, 0) + w
    all_links = [
        (u, v) if u < v else (v, u) for u, v in machine.graph.edges()
    ]
    x = np.array([loads.get(e, 0) for e in all_links], dtype=float)
    t = max(1, result.total_time)
    used = x[x > 0]
    mean_load = float(used.mean()) if used.size else 0.0
    sum_x = float(x.sum())
    sum_x2 = float((x * x).sum())
    jain = (sum_x * sum_x) / (len(x) * sum_x2) if sum_x2 > 0 else 1.0
    return LinkStats(
        num_links=len(all_links),
        total_time=result.total_time,
        # Utilisation can reach 2.0: one packet per direction per tick.
        mean_utilisation=float(x.mean()) / t,
        max_utilisation=float(x.max()) / t if len(x) else 0.0,
        imbalance=float(x.max()) / mean_load if mean_load > 0 else 0.0,
        jain_fairness=jain,
        idle_links=int((x == 0).sum()),
    )
