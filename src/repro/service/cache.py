"""In-process LRU cache with TTL: tier 1 of the service's two-tier cache.

The query service serves each computed response through two cache
tiers keyed by the job's content hash (:attr:`repro.harness.jobs.Job.job_hash`):

1. this cache -- a bounded, thread-safe ``OrderedDict`` in the server
   process, so a warm query costs one dict lookup;
2. the on-disk :class:`~repro.harness.store.ResultStore`, shared with
   the sweep harness, so results survive restarts and are shared with
   CLI sweeps that point at the same store directory.

Entries expire after ``ttl`` seconds (lazily, on lookup) so a
long-running server bounds the staleness of anything served from
memory; the disk tier has no TTL because job results are deterministic
and salted by code version.  The clock is injectable for tests.

:class:`SingleFlight` guards the cold path *between* the tiers: when N
concurrent requests miss on the same job hash, exactly one of them (the
**leader**) computes while the rest park on an event and reuse the
leader's value -- the ``coalesced`` counter on ``GET /metrics`` counts
the requests that were spared a recompute.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["CacheStats", "SingleFlight", "TTLCache"]


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one :class:`TTLCache` instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (what ``GET /metrics`` reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 4),
        }


class TTLCache:
    """Bounded LRU mapping ``key -> value`` with per-entry expiry.

    ``get``/``put`` are O(1) and thread-safe under one lock; eviction
    is LRU (least recently *used*, reads refresh recency), expiry is
    checked lazily on ``get`` so there is no sweeper thread.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.maxsize = max(0, int(maxsize))
        self.ttl = float(ttl)
        self._clock = clock
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a live hit, ``(False, None)`` otherwise."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            expires_at, value = entry
            if self._clock() >= expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, value

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``; evicts LRU entries past ``maxsize``."""
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def keys(self) -> list[str]:
        """Live (unexpired) keys, least-recently-used first."""
        now = self._clock()
        with self._lock:
            return [
                key for key, (expires_at, _) in self._entries.items()
                if now < expires_at
            ]

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()


class _InFlightCall:
    """One in-progress computation followers can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key coalescing of concurrent identical computations.

    ``run(key, fn)`` guarantees that among all threads calling it with
    the same ``key`` concurrently, exactly one executes ``fn`` (the
    leader); the others block until it finishes and share its value --
    or re-raise its exception, so a failing cold compute fails every
    coalesced request identically instead of triggering a retry storm.
    Distinct keys never contend beyond one dict lookup.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, _InFlightCall] = {}
        self.leaders = 0
        self.coalesced = 0

    def run(self, key: str, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """``(fn(), True)`` for the leader, ``(shared value, False)`` else."""
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = self._calls[key] = _InFlightCall()
                self.leaders += 1
                leader = True
            else:
                self.coalesced += 1
                leader = False
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.value, False
        try:
            call.value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.value, True

    def in_flight(self) -> int:
        """How many keys are currently being computed."""
        with self._lock:
            return len(self._calls)

    def stats(self) -> dict[str, Any]:
        """JSON-ready leader/coalesced counters (for ``GET /metrics``)."""
        with self._lock:
            return {"leaders": self.leaders, "coalesced": self.coalesced}
