"""Sweep front-end: cartesian grids of jobs, cached and executed.

:func:`expand_grid` turns ``(fn, axes, base)`` into the cartesian
product of jobs -- one per cell, each with a complete spec (and hence a
content hash).  :func:`run_sweep` is the funnel every consumer goes
through: look each job up in the result store, execute only the misses
on the chosen executor, persist fresh results, and return a
:class:`SweepResult` in grid order.

Determinism contract: for the same job list, ``run_sweep`` returns the
same values no matter the executor, the worker count, or how many cells
came from the cache -- seeds live in specs, and results are re-ordered
to submission order.  ``python -m repro sweep`` exposes the same engine
on the command line.

``executor`` also accepts a name -- ``"serial"``, ``"parallel"``, or
``"fabric"`` (the leased work-queue fabric in :mod:`repro.fabric`, see
``docs/FABRIC.md``) -- for callers that do not want to construct one.
"""

from __future__ import annotations

import itertools
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.harness.executors import JobResult, ParallelExecutor, SerialExecutor
from repro.harness.jobs import Job
from repro.harness.store import ResultStore
from repro.obs import trace as obs

__all__ = ["SweepResult", "expand_grid", "resolve_executor", "run_sweep"]


def resolve_executor(executor: Any) -> Any:
    """Map an executor name to an instance; pass instances through.

    Names: ``"serial"``, ``"parallel"`` (process pool, default worker
    count), ``"fabric"`` (leased work-queue fabric, default worker
    count).  The fabric import is lazy so the harness has no hard
    dependency on :mod:`repro.fabric`.
    """
    if executor is None:
        return SerialExecutor()
    if not isinstance(executor, str):
        return executor
    name = executor.strip().lower()
    if name == "serial":
        return SerialExecutor()
    if name == "parallel":
        return ParallelExecutor()
    if name == "fabric":
        from repro.fabric import FabricExecutor

        return FabricExecutor()
    raise ValueError(
        f"unknown executor {executor!r}: expected 'serial', 'parallel', "
        "'fabric', or an executor instance"
    )


def expand_grid(
    fn: str,
    axes: Mapping[str, Sequence[Any]],
    base: Mapping[str, Any] | None = None,
) -> list[Job]:
    """Cartesian product of ``axes`` over ``base``: one job per cell.

    Axis order fixes cell order (last axis varies fastest, like nested
    loops); ``base`` supplies spec keys shared by every cell.  An axis
    may not shadow a base key -- that is almost always a bug.
    """
    base = dict(base or {})
    axes = {key: list(values) for key, values in axes.items()}
    shadowed = sorted(set(base) & set(axes))
    if shadowed:
        raise ValueError(f"axes shadow base spec keys: {shadowed}")
    for key, values in axes.items():
        if not values:
            raise ValueError(f"axis {key!r} is empty; the grid would be too")
    jobs = []
    for combo in itertools.product(*axes.values()):
        spec = dict(base)
        spec.update(zip(axes.keys(), combo))
        jobs.append(Job(fn, spec))
    return jobs


@dataclass
class SweepResult:
    """Everything one sweep produced, in grid order."""

    results: list[JobResult]
    wall_seconds: float
    executor: str
    store_stats: dict[str, Any] | None = None

    @property
    def values(self) -> list[Any]:
        """The job values, grid-ordered (``None`` for failed cells)."""
        return [r.value for r in self.results]

    @property
    def num_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def num_resumed(self) -> int:
        """Cells resumed from the result store instead of re-executed.

        Today every cached cell is a resumed cell (the store is the only
        pre-execution tier a sweep consults), so this aliases
        :attr:`num_cached` under the name the resume workflow reports
        (``repro sweep --resume``).
        """
        return self.num_cached

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def num_retries(self) -> int:
        """Total re-executions after first attempts, across all cells."""
        return sum(r.retries for r in self.results)

    @property
    def num_timeouts(self) -> int:
        """Total per-attempt deadline expiries, across all cells."""
        return sum(r.timeouts for r in self.results)

    @property
    def ok(self) -> bool:
        return self.num_failed == 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this sweep's cells served from the store."""
        return self.num_cached / len(self.results) if self.results else 0.0

    def errors(self) -> list[tuple[Job, str]]:
        """The failed cells as ``(job, error message)`` pairs."""
        return [(r.job, r.error) for r in self.results if not r.ok]

    def value_by_spec(self, **spec_items: Any) -> Any:
        """The value of the unique cell whose spec contains ``spec_items``."""
        matches = [
            r
            for r in self.results
            if all(r.job.spec.get(k) == v for k, v in spec_items.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} cells match {spec_items!r} (want exactly 1)"
            )
        return matches[0].value

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record of the whole sweep (what ``--out`` writes)."""
        return {
            "executor": self.executor,
            "wall_seconds": round(self.wall_seconds, 4),
            "num_jobs": len(self.results),
            "num_cached": self.num_cached,
            "num_resumed": self.num_resumed,
            "num_failed": self.num_failed,
            "num_retries": self.num_retries,
            "num_timeouts": self.num_timeouts,
            "store": self.store_stats,
            "results": [r.as_dict() for r in self.results],
        }


def _progress_printer(total: int) -> Callable[[JobResult], None]:
    done = itertools.count(1)

    def show(result: JobResult) -> None:
        tag = "cache" if result.cached else f"{result.seconds:.3f}s"
        status = "" if result.ok else "  FAILED"
        print(
            f"[{next(done):>{len(str(total))}}/{total}] "
            f"{result.job.label()}  {tag}{status}",
            file=sys.stderr,
        )

    return show


def run_sweep(
    jobs: Iterable[Job],
    executor: SerialExecutor | ParallelExecutor | str | None = None,
    store: ResultStore | None = None,
    progress: bool | Callable[[JobResult], None] = False,
) -> SweepResult:
    """Run every job, serving repeats from ``store`` when one is given.

    Cache hits never execute; misses run on ``executor`` (default
    serial; also accepts ``"serial"``/``"parallel"``/``"fabric"`` by
    name) and successful fresh results are persisted.  The returned
    results are in job order regardless of completion order.
    """
    jobs = list(jobs)
    executor = resolve_executor(executor)
    on_result = (
        _progress_printer(len(jobs))
        if progress is True
        else (progress if callable(progress) else None)
    )

    t0 = time.perf_counter()
    with obs.span(
        "harness.sweep", jobs=len(jobs), executor=executor.description
    ) as sp:
        obs.event("sweep.started", jobs=len(jobs), executor=executor.description)
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[int] = []
        for i, job in enumerate(jobs):
            if store is not None:
                hit, value = store.get(job)
                if hit:
                    results[i] = JobResult(
                        job=job, value=value, attempts=0, cached=True,
                        worker="store",
                    )
                    obs.event(
                        "job.cache_hit", tier="store", fn=job.fn,
                        hash=job.job_hash[:12],
                    )
                    if on_result is not None:
                        on_result(results[i])
                    continue
            pending.append(i)

        if pending:
            fresh = executor.run([jobs[i] for i in pending], on_result=on_result)
            for i, result in zip(pending, fresh):
                results[i] = result
                if store is not None and result.ok:
                    store.put(result.job, result.value, seconds=result.seconds)

        sweep = SweepResult(
            results=results,  # type: ignore[arg-type]
            wall_seconds=time.perf_counter() - t0,
            executor=executor.description,
            store_stats=store.stats.as_dict() if store is not None else None,
        )
        sp.set(
            cached=sweep.num_cached, failed=sweep.num_failed,
            retries=sweep.num_retries, timeouts=sweep.num_timeouts,
        )
        obs.event(
            "sweep.finished",
            jobs=len(jobs),
            cached=sweep.num_cached,
            failed=sweep.num_failed,
            retries=sweep.num_retries,
            timeouts=sweep.num_timeouts,
            wall_seconds=round(sweep.wall_seconds, 6),
        )
    return sweep
