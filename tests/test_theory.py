"""Tests for the theory layer: Theorem 1, host sizes, tables, Figure 1,
bottleneck-freeness, lambda."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.asymptotics import LogPoly
from repro.theory import (
    bottleneck_freeness,
    figure1_data,
    generate_table,
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    lam_formula,
    lam_numeric,
    lemma8_time_lower,
    lemma9_depth_condition,
    max_host_size,
    numeric_slowdown_bound,
    symbolic_slowdown,
    theorem_guest_time,
)
from repro.topologies import build_de_bruijn, build_linear_array, build_mesh, build_tree
from repro.traffic import TrafficMultigraph

N = LogPoly.n()
LG = LogPoly.log()
LGLG = LogPoly.log(level=2)


class TestSymbolicSlowdown:
    def test_debruijn_on_mesh(self):
        """The paper's intro example: S_c >= Omega(n / (sqrt(m) lg n))."""
        b = symbolic_slowdown("de_bruijn", "mesh_2")
        assert b.beta_guest == N / LG
        assert b.beta_host == LogPoly.n(Fraction(1, 2))

    def test_evaluate(self):
        b = symbolic_slowdown("de_bruijn", "mesh_2")
        # n=2^14, m=196=lg^2 n: bound = (16384/14)/14 = 83.6
        assert b.evaluate(2**14, 196) == pytest.approx(16384 / 14 / 14, rel=0.01)

    def test_specialise_at_crossover(self):
        """At m = lg^2 n the bound becomes n/(lg^2 n) = load bound."""
        b = symbolic_slowdown("de_bruijn", "mesh_2")
        s = b.specialise(LG**2)
        assert s == N / LG**2

    def test_same_family_constant(self):
        b = symbolic_slowdown("mesh_2", "mesh_2")
        assert b.beta_guest == b.beta_host

    def test_str(self):
        s = str(symbolic_slowdown("de_bruijn", "mesh_2"))
        assert "S_c" in s and "m" in s


class TestNumericSlowdown:
    def test_lower_bound_holds_conservatively(self):
        g = build_de_bruijn(6)
        h = build_linear_array(16)
        bound = numeric_slowdown_bound(g, h)
        # de Bruijn(64)/array(16): formula ratio ~ (64/6)/1 = 10.7.
        assert 1 <= bound <= 64

    def test_self_bound_at_most_one_ish(self):
        m = build_mesh(6, 2)
        assert numeric_slowdown_bound(m, m) <= 1.0


class TestLemma8:
    def test_time_lower_bound(self):
        host = build_linear_array(8)
        pattern = TrafficMultigraph(8, {(0, 7): 50})
        t = lemma8_time_lower(pattern, host)
        assert t >= 10  # 50 messages, beta(array) = Theta(1)

    def test_simulator_respects_bound(self):
        """Actually routing the pattern takes at least the Lemma-8 time."""
        from repro.routing import RoutingSimulator

        host = build_linear_array(8)
        pattern = TrafficMultigraph(8, {(0, 7): 30, (1, 6): 20})
        t_bound = lemma8_time_lower(pattern, host)
        its = []
        for (u, v), w in pattern.weights.items():
            its += [[u, v]] * w
        t_real = RoutingSimulator(host).route(its).total_time
        assert t_real >= t_bound

    def test_pattern_too_large(self):
        with pytest.raises(ValueError):
            lemma8_time_lower(TrafficMultigraph(20, {(0, 1): 1}), build_linear_array(8))


class TestMaxHostSize:
    def test_paper_intro_example(self):
        """de Bruijn on 2-d mesh: |H| = O(lg^2 n)."""
        assert max_host_size("de_bruijn", "mesh_2").expr == LG**2

    def test_debruijn_on_array(self):
        assert max_host_size("de_bruijn", "linear_array").expr == LG

    def test_debruijn_on_xtree(self):
        assert max_host_size("de_bruijn", "xtree").expr == LG * LGLG

    def test_debruijn_on_mesh3(self):
        assert max_host_size("de_bruijn", "mesh_3").expr == LG**3

    def test_mesh_guest_on_array(self):
        assert max_host_size("mesh_2", "linear_array").expr == LogPoly.n(
            Fraction(1, 2)
        )

    def test_mesh_guest_on_xtree(self):
        assert max_host_size("mesh_2", "xtree").expr == LogPoly.n(
            Fraction(1, 2)
        ) * LG

    def test_mesh3_guest_on_mesh2(self):
        assert max_host_size("mesh_3", "mesh_2").expr == LogPoly.n(
            Fraction(2, 3)
        )

    def test_equal_power_full_size(self):
        assert max_host_size("mesh_2", "mesh_2").expr == N
        assert max_host_size("de_bruijn", "butterfly").expr == N

    def test_more_powerful_host_capped_at_n(self):
        assert max_host_size("mesh_2", "mesh_3").expr == N
        assert max_host_size("de_bruijn", "hypercube").expr == N
        assert max_host_size("mesh_2", "de_bruijn").expr == N

    def test_xtree_guest_on_tree(self):
        # lg(m)... host tree: 1/m = lg n / n -> m = n/lg n.
        assert max_host_size("xtree", "tree").expr == N / LG

    def test_hierarchical_guests_match_mesh_guests(self):
        """MoT/multigrid/pyramid guests have mesh-guest host bounds."""
        for fam in ("mesh_of_trees", "multigrid", "pyramid"):
            for host in ("linear_array", "xtree", "mesh_1"):
                assert (
                    max_host_size(f"{fam}_2", host).expr
                    == max_host_size("mesh_2", host).expr
                )

    def test_butterfly_class_all_equal(self):
        keys = (
            "butterfly",
            "ccc",
            "shuffle_exchange",
            "de_bruijn",
            "multibutterfly",
            "expander",
            "weak_hypercube",
        )
        for k in keys:
            assert max_host_size(k, "mesh_2").expr == LG**2


class TestGuestTimePreconditions:
    def test_xtree_logarithmic(self):
        assert theorem_guest_time("xtree").expr == LG

    def test_mesh_polynomial(self):
        assert theorem_guest_time("mesh_3").expr == LogPoly.n(Fraction(1, 3))

    def test_butterfly_class_logarithmic(self):
        assert theorem_guest_time("de_bruijn").expr == LG


class TestTables:
    def test_table1_mesh2_cells(self):
        rows = {r.host_key: r.bound.expr for r in generate_table1(j=2)}
        half = LogPoly.n(Fraction(1, 2))
        assert rows["linear_array"] == half
        assert rows["tree"] == half
        assert rows["global_bus"] == half
        assert rows["weak_ppn"] == half
        assert rows["xtree"] == half * LG
        assert rows["mesh_1"] == half
        assert rows["mesh_2"] == N
        assert rows["mesh_of_trees_1"] == half

    def test_table1_j3(self):
        rows = {r.host_key: r.bound.expr for r in generate_table1(j=3)}
        third = LogPoly.n(Fraction(1, 3))
        assert rows["linear_array"] == third
        assert rows["mesh_2"] == LogPoly.n(Fraction(2, 3))
        assert rows["xtree"] == third * LG

    def test_table1_torus_same_as_mesh(self):
        a = {r.host_key: r.bound.expr for r in generate_table1(j=2, guest="mesh")}
        b = {r.host_key: r.bound.expr for r in generate_table1(j=2, guest="torus")}
        assert a == b

    def test_table1_invalid_guest(self):
        with pytest.raises(ValueError):
            generate_table1(guest="de_bruijn")

    def test_table2_includes_xgrid_hosts(self):
        keys = {r.host_key for r in generate_table2(j=2)}
        assert "xgrid_2" in keys

    def test_table2_cells_match_table1(self):
        t1 = {r.host_key: r.bound.expr for r in generate_table1(j=2)}
        t2 = {r.host_key: r.bound.expr for r in generate_table2(j=2)}
        for k, v in t1.items():
            assert t2[k] == v

    def test_table3_debruijn_cells(self):
        rows = {r.host_key: r.bound.expr for r in generate_table3("de_bruijn")}
        assert rows["linear_array"] == LG
        assert rows["tree"] == LG
        assert rows["xtree"] == LG * LGLG
        assert rows["mesh_2"] == LG**2
        assert rows["mesh_3"] == LG**3
        assert rows["xgrid_2"] == LG**2
        assert rows["pyramid_3"] == LG**3

    def test_table3_invalid_guest(self):
        with pytest.raises(ValueError):
            generate_table3("mesh_2")

    def test_table4_rows(self):
        rows = generate_table4()
        d = {name: (b, dl) for name, b, dl in rows}
        assert d["de Bruijn"] == ("Theta(n / lg(n))", "Theta(lg(n))")
        assert d["X-Tree"] == ("Theta(lg(n))", "Theta(lg(n))")
        assert d["Mesh_2"] == ("Theta(n^(1/2))", "Theta(n^(1/2))")
        assert d["Hypercube"][0] == "Theta(n)"

    def test_generic_generate_table(self):
        """A (strong) hypercube guest has per-processor bandwidth Theta(1),
        which no array host of growing size can match: only O(1) hosts."""
        rows = generate_table("hypercube", ["linear_array"])
        assert rows[0].bound.expr == LogPoly.one()

    def test_cell_render(self):
        row = generate_table3("de_bruijn")[0]
        assert row.cell() == "|H| <= O(lg(|G|))"


class TestFigure1:
    def test_debruijn_mesh_curves(self):
        f1 = figure1_data("de_bruijn", "mesh_2", 2**14)
        assert f1.crossover_symbolic.expr == LG**2
        assert f1.crossover_numeric == pytest.approx(196.0)

    def test_load_curve_shape(self):
        f1 = figure1_data("de_bruijn", "mesh_2", 2**12)
        assert f1.load_bounds == sorted(f1.load_bounds, reverse=True)
        assert f1.load_bounds[-1] == pytest.approx(1.0)

    def test_curves_cross_at_crossover(self):
        """The load curve dominates left of m* and the bandwidth curve
        right of it; the transition brackets the symbolic crossover."""
        f1 = figure1_data("de_bruijn", "mesh_2", 2**14)
        last_load_wins = max(
            m
            for m, l, b in zip(f1.m_values, f1.load_bounds, f1.bandwidth_bounds)
            if l >= b
        )
        first_bw_wins = min(
            m
            for m, l, b in zip(f1.m_values, f1.load_bounds, f1.bandwidth_bounds)
            if b > l
        )
        assert last_load_wins <= f1.crossover_numeric <= first_bw_wins

    def test_bandwidth_exceeds_load_beyond_crossover(self):
        f1 = figure1_data("de_bruijn", "mesh_2", 2**14)
        for m, load, bw in zip(f1.m_values, f1.load_bounds, f1.bandwidth_bounds):
            if m > 2 * f1.crossover_numeric:
                assert bw > load

    def test_custom_m_values_validated(self):
        with pytest.raises(ValueError):
            figure1_data("de_bruijn", "mesh_2", 256, m_values=[1])

    def test_tiny_guest_rejected(self):
        with pytest.raises(ValueError):
            figure1_data("de_bruijn", "mesh_2", 2)


class TestBottleneck:
    def test_mesh_bottleneck_free(self):
        rep = bottleneck_freeness(build_mesh(6, 2), trials=4, seed=0)
        assert rep.is_bottleneck_free()
        assert rep.worst_ratio > 0

    def test_tree_bottleneck_free(self):
        rep = bottleneck_freeness(build_tree(4), trials=4, seed=0)
        assert rep.is_bottleneck_free()

    def test_report_str(self):
        rep = bottleneck_freeness(build_mesh(4, 2), trials=2, seed=0)
        assert "bottleneck" in str(rep)


class TestLambda:
    def test_formula_is_delta(self):
        assert lam_formula("mesh_2") == LogPoly.n(Fraction(1, 2))
        assert lam_formula("de_bruijn") == LG

    def test_numeric_close_to_diameter_scale(self):
        m = build_mesh(8, 2)
        lam = lam_numeric(m)
        assert m.diameter() / 4 <= lam <= m.diameter()

    def test_depth_condition_mesh_constant(self):
        """Meshes satisfy Lemma 9's condition with ratio O(1)."""
        assert lemma9_depth_condition(build_mesh(8, 2)) <= 4.0

    def test_depth_condition_debruijn_constant(self):
        assert lemma9_depth_condition(build_de_bruijn(6)) <= 4.0
