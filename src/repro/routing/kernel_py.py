"""The compiled tick-loop kernel, as Numba-compatible Python source.

This module holds the *algorithm* behind ``engine="compiled"`` in a
form three executors share:

* Numba ``@njit``-compiles :func:`tick_kernel` verbatim (the function
  body uses only scalars, flat int64 arrays, and plain loops);
* ``routing/_kernel.c`` is a line-for-line C translation, built with
  the system C compiler and driven through ``ctypes`` when Numba is
  absent (see :mod:`repro.routing.compiled`);
* the plain interpreter can run this function directly -- far too slow
  to serve as an engine, but exactly what the equivalence tests use to
  pin the *algorithm* (and therefore the Numba backend) to the
  reference engine on machines where Numba is not installed.

Keep the three in sync: any change here must be mirrored in
``_kernel.c``.

Data layout (all int64 unless noted): itineraries use the shared flat
layout of :func:`repro.routing.engine.flatten_legs`; per-(node, dest)
``dist``/``next_eid`` matrices are flattened row-major; each directed
edge's queue is an intrusive linked list threaded through ``qnext``
(packet id -> next packet id) with head table ``qhead`` and occupancy
``qlen``, and the queue winner is the minimum of the packed arbitration
key ``pkey`` -- ``(n << 32) - (remaining << 32) | seq`` for
farthest-first, bare ``seq`` for FIFO, the same composite
``route_fast`` sorts on.  A pop scans its queue's list (O(queue
length)); there are no heaps because total scan work is bounded by
(waiting packets x ticks), which the empty-tick fast-forward keeps
proportional to real events.

The kernel never calls back into Python -- no tracer hooks, no
allocation -- so the observability no-op path is trivially preserved
inside compiled regions (the wrapper emits the ``route.*`` spans and
counters around the call instead).
"""

from __future__ import annotations

__all__ = ["tick_kernel", "KERNEL_STATUS_OK", "KERNEL_STATUS_OVERRUN"]

KERNEL_STATUS_OK = 0
KERNEL_STATUS_OVERRUN = 1  # hit max_ticks with packets still undelivered


def tick_kernel(
    leg_flat,  # int64[sum leg lengths]  waypoint stream
    leg_ptr,  # int64[npkts + 1]         packet offsets into leg_flat
    fin,  # int64[npkts]                 final destination per packet
    stage,  # int64[npkts]               current waypoint index (init 1)
    dist,  # int64[n * n]                dist[u * n + d]
    next_eid,  # int64[n * n]            next_eid[u * n + d]
    edge_dst,  # int64[E]                arrival node per directed edge
    indptr,  # int64[n + 1]              out-edge id range per node
    inj_pids,  # int64[m]                travelling pids, (release, pid) asc
    inj_times,  # int64[m]               their release ticks, same order
    pkey,  # int64[npkts]                arbitration key while queued
    qnext,  # int64[npkts]               intrusive queue links (init -1)
    qhead,  # int64[E]                   queue head pid per edge (init -1)
    qlen,  # int64[E]                    queue occupancy (init 0)
    mpid,  # int64[E]                    scratch: this tick's movers
    meid,  # int64[E]                    scratch: their edges
    selbuf,  # int64[max_degree]         scratch: weak-machine picks
    delivered,  # int64[npkts]           out: delivery tick (init -1)
    traffic,  # int64[E]                 out: packets carried per edge
    n,  # int
    num_edges,  # int
    max_ticks,  # int
    fifo,  # int (1 = FIFO, 0 = farthest-first)
    port_limit,  # int (0 = unlimited)
    undelivered,  # int: travelling packet count
):
    """Run the whole tick loop; returns
    ``(status, total_time, max_queue, ticks_skipped, undelivered_left)``.
    """
    num_inj = inj_times.shape[0]
    prio_base = n << 32
    seq = 0
    iptr = 0
    tick = 0
    waiting = 0
    max_queue = 0
    skipped = 0

    # Release-0 packets enqueue before the clock starts.
    while iptr < num_inj and inj_times[iptr] == 0:
        pid = inj_pids[iptr]
        u = leg_flat[leg_ptr[pid]]
        target = leg_flat[leg_ptr[pid] + stage[pid]]
        eid = next_eid[u * n + target]
        if fifo != 0:
            pkey[pid] = seq
        else:
            pkey[pid] = (prio_base - (dist[u * n + fin[pid]] << 32)) | seq
        seq += 1
        qnext[pid] = qhead[eid]
        qhead[eid] = pid
        qlen[eid] += 1
        waiting += 1
        if qlen[eid] > max_queue:
            max_queue = qlen[eid]
        iptr += 1

    while undelivered > 0:
        if waiting == 0:
            # Everything in flight awaits injection: jump the clock to
            # the next release tick (or just past the budget).
            nxt = inj_times[iptr]
            jump = nxt
            if jump > max_ticks:
                jump = max_ticks + 1
            if jump > tick + 1:
                skipped += jump - tick - 1
                tick = jump - 1
        tick += 1
        while iptr < num_inj and inj_times[iptr] == tick:
            pid = inj_pids[iptr]
            u = leg_flat[leg_ptr[pid]]
            target = leg_flat[leg_ptr[pid] + stage[pid]]
            eid = next_eid[u * n + target]
            if fifo != 0:
                pkey[pid] = seq
            else:
                pkey[pid] = (prio_base - (dist[u * n + fin[pid]] << 32)) | seq
            seq += 1
            qnext[pid] = qhead[eid]
            qhead[eid] = pid
            qlen[eid] += 1
            waiting += 1
            if qlen[eid] > max_queue:
                max_queue = qlen[eid]
            iptr += 1
        if tick > max_ticks:
            return (KERNEL_STATUS_OVERRUN, tick, max_queue, skipped, undelivered)

        # -- winner selection, ascending edge id == ascending (u, v) ----
        nmoves = 0
        if port_limit <= 0:
            for eid in range(num_edges):
                if qlen[eid] == 0:
                    continue
                # Pop the queue's minimum arbitration key.
                best = qhead[eid]
                bestprev = -1
                prev = best
                cur = qnext[best]
                while cur != -1:
                    if pkey[cur] < pkey[best]:
                        best = cur
                        bestprev = prev
                    prev = cur
                    cur = qnext[cur]
                if bestprev == -1:
                    qhead[eid] = qnext[best]
                else:
                    qnext[bestprev] = qnext[best]
                qnext[best] = -1
                qlen[eid] -= 1
                waiting -= 1
                mpid[nmoves] = best
                meid[nmoves] = eid
                nmoves += 1
        else:
            # Weak machine: each node serves its port_limit busiest
            # out-links (ties by edge id).  A node's out-edges are a
            # contiguous edge-id block, so scan nodes in order and pick
            # within the block.
            for u in range(n):
                lo = indptr[u]
                hi = indptr[u + 1]
                npick = 0
                while npick < port_limit:
                    best_eid = -1
                    best_len = 0
                    for eid in range(lo, hi):
                        if qlen[eid] <= best_len:
                            continue
                        taken = False
                        for j in range(npick):
                            if selbuf[j] == eid:
                                taken = True
                                break
                        if not taken:
                            best_eid = eid
                            best_len = qlen[eid]
                    if best_eid == -1:
                        break
                    selbuf[npick] = best_eid
                    npick += 1
                # Emit this node's picks in ascending edge-id order.
                for eid in range(lo, hi):
                    picked = False
                    for j in range(npick):
                        if selbuf[j] == eid:
                            picked = True
                            break
                    if not picked:
                        continue
                    best = qhead[eid]
                    bestprev = -1
                    prev = best
                    cur = qnext[best]
                    while cur != -1:
                        if pkey[cur] < pkey[best]:
                            best = cur
                            bestprev = prev
                        prev = cur
                        cur = qnext[cur]
                    if bestprev == -1:
                        qhead[eid] = qnext[best]
                    else:
                        qnext[bestprev] = qnext[best]
                    qnext[best] = -1
                    qlen[eid] -= 1
                    waiting -= 1
                    mpid[nmoves] = best
                    meid[nmoves] = eid
                    nmoves += 1

        # -- arrivals, in the same ascending edge-id order --------------
        for i in range(nmoves):
            eid = meid[i]
            pid = mpid[i]
            traffic[eid] += 1
            v = edge_dst[eid]
            lp = leg_ptr[pid]
            last = leg_ptr[pid + 1] - 1 - lp  # index of fin within the leg
            if v == fin[pid] and stage[pid] == last:
                delivered[pid] = tick
                undelivered -= 1
                continue
            if v == leg_flat[lp + stage[pid]] and stage[pid] < last:
                stage[pid] += 1
            if v == fin[pid] and stage[pid] == last:
                delivered[pid] = tick
                undelivered -= 1
                continue
            target = leg_flat[lp + stage[pid]]
            eid2 = next_eid[v * n + target]
            if fifo != 0:
                pkey[pid] = seq
            else:
                pkey[pid] = (prio_base - (dist[v * n + fin[pid]] << 32)) | seq
            seq += 1
            qnext[pid] = qhead[eid2]
            qhead[eid2] = pid
            qlen[eid2] += 1
            waiting += 1
            if qlen[eid2] > max_queue:
                max_queue = qlen[eid2]

    return (KERNEL_STATUS_OK, tick, max_queue, skipped, 0)
