"""LP-certified congestion lower bounds (exact fractional congestion).

The cut family in :mod:`repro.embedding.lower_bounds` gives fast lower
bounds on the minimum congestion ``C(H, T)``; this module computes the
*exact fractional* minimum congestion by linear programming, which is a
tighter certified lower bound on the integral optimum (fractional <=
integral) and lets the ablation bench quantify how much the cut family
leaves on the table.

Formulation (multicommodity flow, one commodity per traffic pair):

    minimise z
    s.t.  for each commodity k:   flow conservation with demand w_k
          for each undirected link e:  sum_k (f_k(e->) + f_k(e<-)) <= z

Variables: per-commodity flows on directed links, plus z; solved with
``scipy.optimize.linprog`` (HiGHS).  Problem size is (pairs * 2E + 1)
variables, so this is for small instances (the ablation uses n <= 36);
``max_pairs`` guards against accidental K_n-sized calls.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.topologies.base import Machine
from repro.traffic.multigraph import TrafficMultigraph

__all__ = ["lp_min_congestion", "lp_beta_upper"]


def lp_min_congestion(
    machine: Machine,
    traffic: TrafficMultigraph | None = None,
    max_pairs: int = 800,
) -> float:
    """Exact minimum *fractional* congestion of routing ``traffic``.

    ``traffic=None`` means complete symmetric traffic (every unordered
    pair, multiplicity 1).  Returns a certified lower bound on the
    integral minimum congestion C(H, T).
    """
    n = machine.num_nodes
    if traffic is None:
        traffic = TrafficMultigraph(
            n, {(u, v): 1 for u in range(n) for v in range(u + 1, n)}
        )
    if traffic.n > n:
        raise ValueError(f"traffic over {traffic.n} vertices, host has {n}")
    pairs = [(u, v, w) for (u, v), w in sorted(traffic.weights.items()) if w > 0]
    if not pairs:
        return 0.0
    if len(pairs) > max_pairs:
        raise ValueError(
            f"{len(pairs)} commodities exceeds max_pairs={max_pairs}; "
            "use the cut bounds for large instances"
        )

    edges = list(machine.graph.edges())
    ne = len(edges)
    k = len(pairs)
    # Variable layout: for commodity i, directed flows f[i, e, dir] at
    # offset i * 2 * ne + 2*e + dir; z is the last variable.
    nvars = k * 2 * ne + 1
    z_col = nvars - 1

    # Equality constraints: conservation at every node for every
    # commodity (rows: k * n).
    a_eq = lil_matrix((k * n, nvars))
    b_eq = np.zeros(k * n)
    for i, (s, t, w) in enumerate(pairs):
        base = i * 2 * ne
        for e, (u, v) in enumerate(edges):
            # dir 0: u -> v, dir 1: v -> u
            a_eq[i * n + u, base + 2 * e] -= 1  # leaves u
            a_eq[i * n + v, base + 2 * e] += 1  # enters v
            a_eq[i * n + v, base + 2 * e + 1] -= 1
            a_eq[i * n + u, base + 2 * e + 1] += 1
        b_eq[i * n + s] = -w  # net outflow w at source
        b_eq[i * n + t] = w  # net inflow w at sink

    # Inequalities: per undirected link, total flow <= z.
    a_ub = lil_matrix((ne, nvars))
    for e in range(ne):
        for i in range(k):
            base = i * 2 * ne
            a_ub[e, base + 2 * e] = 1
            a_ub[e, base + 2 * e + 1] = 1
        a_ub[e, z_col] = -1
    b_ub = np.zeros(ne)

    c = np.zeros(nvars)
    c[z_col] = 1.0
    res = linprog(
        c,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=[(0, None)] * nvars,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"congestion LP failed: {res.message}")
    return float(res.x[z_col])


def lp_beta_upper(machine: Machine, max_pairs: int = 800) -> float:
    """LP-certified upper bound on beta(H): E(K_n) / fractional C(H, K_n)."""
    n = machine.num_nodes
    c = lp_min_congestion(machine, max_pairs=max_pairs)
    if c <= 0:
        return float("inf")
    return (n * (n - 1) / 2) / c
