"""Threaded JSON-over-HTTP query service over the reproduction's core.

A long-lived, stdlib-only (``http.server``) front-end that turns the
one-shot CLI queries into a service: request validation against
declarative schemas, a two-tier response cache (in-process LRU+TTL in
front of the sweep harness's on-disk :class:`~repro.harness.store.ResultStore`),
per-endpoint metrics with latency percentiles, a worker cap, and
graceful drain on SIGTERM.  Start it with ``python -m repro serve``;
see ``docs/SERVICE.md`` for the endpoint and error-code reference.

Layering: :mod:`schemas` (validation) -> :mod:`app` (dispatch + cache +
compute via :mod:`repro.harness`) -> :mod:`server` (HTTP transport);
:mod:`cache`/:mod:`metrics` are the service-local state,
:mod:`serializers` is shared with the CLI ``--json`` flags.
"""

from repro.service.app import QueryService
from repro.service.cache import CacheStats, TTLCache
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.prefork import (
    MetricsDir,
    PreforkUnavailableError,
    choose_strategy,
    serve_prefork,
)
from repro.service.schemas import MAX_MACHINE_SIZE, ApiError, Field, Schema
from repro.service.server import ServiceServer, create_server, serve

__all__ = [
    "ApiError",
    "CacheStats",
    "Field",
    "MAX_MACHINE_SIZE",
    "MetricsDir",
    "PreforkUnavailableError",
    "QueryService",
    "Schema",
    "ServiceMetrics",
    "ServiceServer",
    "TTLCache",
    "choose_strategy",
    "create_server",
    "percentile",
    "serve",
    "serve_prefork",
]
