"""Live request metrics for the query service.

One :class:`ServiceMetrics` instance per server process records, per
endpoint (``"GET /v1/bandwidth"``, ... -- route templates, never raw
paths, so cardinality is fixed):

* request and error (status >= 400) counts over the server's lifetime;
* latency percentiles from a **bounded reservoir**
  (:class:`~repro.loadgen.stats.LatencyReservoir`, Algorithm R): a
  fixed-size uniform sample over *every* request the process ever
  served, not a sliding window.  Memory stays O(window) no matter how
  long the server runs, and -- unlike the last-N window this replaced
  -- an early latency spike remains visible in the percentiles instead
  of aging out.  ``count``/``mean``/``max`` are tracked exactly.

:meth:`ServiceMetrics.counters` exports the exact (non-sampled)
counters in a mergeable shape; the pre-fork tier sums these across
worker processes for the cluster-wide view on ``GET /metrics``
(see :mod:`repro.service.prefork`).

Everything is guarded by per-reservoir locks -- observation is a few
list ops, contention is negligible next to the request work itself.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.loadgen.stats import LatencyReservoir, percentile

__all__ = ["ServiceMetrics", "percentile"]


class _EndpointStats:
    __slots__ = ("requests", "errors", "reservoir")

    def __init__(self, window: int) -> None:
        self.requests = 0
        self.errors = 0
        self.reservoir = LatencyReservoir(capacity=window)


class ServiceMetrics:
    """Per-endpoint counters + latency reservoirs, thread-safe."""

    def __init__(self, window: int = 2048) -> None:
        self.window = int(window)
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointStats] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed request (called once per response)."""
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = _EndpointStats(self.window)
            stats.requests += 1
            if status >= 400:
                stats.errors += 1
        stats.reservoir.observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready ``{endpoint: {requests, errors, latency_ms}}``."""
        with self._lock:
            endpoints = dict(self._endpoints)
        return {
            endpoint: {
                "requests": stats.requests,
                "errors": stats.errors,
                "latency_ms": stats.reservoir.summary_ms(),
            }
            for endpoint, stats in sorted(endpoints.items())
        }

    def counters(self) -> dict[str, Any]:
        """Exact, mergeable per-endpoint counters (no percentiles).

        Percentiles cannot be summed across processes, so the
        cross-worker merge carries only counts and total seconds (from
        which a merged mean is still exact).
        """
        with self._lock:
            endpoints = dict(self._endpoints)
        return {
            endpoint: {
                "requests": stats.requests,
                "errors": stats.errors,
                "total_seconds": round(stats.reservoir.total, 6),
            }
            for endpoint, stats in sorted(endpoints.items())
        }
