"""Circuit builders: the standard emulation circuit shapes.

* :func:`build_nonredundant_circuit` -- duplicity 1 everywhere: the plain
  computation, and the homogeneous circuit Lemma 9 operates on;
* :func:`build_redundant_circuit` -- uniform duplicity ``r`` (each guest
  operation performed at ``r`` places; still efficient for constant r);
* :func:`build_decaying_redundant_circuit` -- duplicity halving with
  depth, the shape of redundant strategies that compute speculatively
  early and consolidate later.

All builders produce *valid* circuits: node ``(v, i+1, y)`` takes inputs
from representative ``(u, i, y mod dup(u, i))`` of every guest neighbour
``u`` and from its own class (identity arc).
"""

from __future__ import annotations

from repro.emulation.circuit import Circuit, CircuitNode
from repro.topologies.base import Machine
from repro.util import check_positive_int

__all__ = [
    "build_nonredundant_circuit",
    "build_redundant_circuit",
    "build_decaying_redundant_circuit",
]


def _wire(circuit: Circuit) -> None:
    """Add the canonical valid arc set for the declared duplicities."""
    g = circuit.guest.graph
    for i in range(1, circuit.depth + 1):
        prev = circuit.duplicity[i - 1]
        for head in circuit.level_nodes(i):
            v, _, y = head
            # Identity input from own class.
            own_dup = prev.get(v, 0)
            if own_dup == 0:
                raise ValueError(
                    f"vertex {v} missing at level {i - 1}: cannot carry state"
                )
            circuit.add_arc(CircuitNode(v, i - 1, y % own_dup), head)
            # One input per guest neighbour.
            for u in g.neighbors(v):
                dup = prev.get(u, 0)
                if dup == 0:
                    raise ValueError(
                        f"vertex {u} missing at level {i - 1}: circuit invalid"
                    )
                circuit.add_arc(CircuitNode(u, i - 1, y % dup), head)


def build_nonredundant_circuit(guest: Machine, depth: int) -> Circuit:
    """Duplicity-1 circuit: exactly the guest computation, levelled."""
    c = Circuit(guest, depth)
    for i in range(depth + 1):
        for u in guest.nodes():
            c.add_class(u, i, 1)
    _wire(c)
    return c


def build_redundant_circuit(guest: Machine, depth: int, duplicity: int) -> Circuit:
    """Uniform-duplicity circuit (homogeneous, efficient for O(1) duplicity)."""
    check_positive_int(duplicity, "duplicity")
    c = Circuit(guest, depth)
    for i in range(depth + 1):
        for u in guest.nodes():
            c.add_class(u, i, duplicity)
    _wire(c)
    return c


def build_decaying_redundant_circuit(
    guest: Machine, depth: int, initial_duplicity: int
) -> Circuit:
    """Duplicity ``max(1, initial >> i)`` at level ``i`` (halving).

    Total nodes <= 2 * initial * |G| + |G| * depth, so the circuit stays
    efficient even for non-constant initial duplicity up to O(depth).
    """
    check_positive_int(initial_duplicity, "initial_duplicity")
    c = Circuit(guest, depth)
    for i in range(depth + 1):
        dup = max(1, initial_duplicity >> i)
        for u in guest.nodes():
            c.add_class(u, i, dup)
    _wire(c)
    return c
