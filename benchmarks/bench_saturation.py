"""Open-loop saturation: the Kruskal-Snir cost/performance view of beta.

The paper's operational bandwidth definition descends from [9]'s
offered-load methodology.  This bench sweeps injection rates on four
machine families and checks the textbook signatures:

* delivered rate tracks offered rate below saturation, then plateaus;
* the plateau orders the families exactly as Table 4 does
  (array < xtree < mesh < de Bruijn at n ~ 64);
* latency stays flat below saturation and blows up above it;
* the plateau agrees with the closed-batch bandwidth measurement within
  constants (a third Theorem-6 consistency check).
"""

from __future__ import annotations

import tempfile

import pytest

from conftest import emit
from repro.harness import Job, ResultStore, run_sweep
from repro.routing import SaturationPoint, measure_bandwidth
from repro.topologies import family_spec
from repro.util import format_table

pytestmark = pytest.mark.slow

FAMILIES = ["linear_array", "xtree", "mesh_2", "de_bruijn"]
RATES = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]

#: Module-lifetime result store: five tests share each family's curve,
#: so every sweep after the first is a cache hit instead of a re-run.
_STORE = ResultStore(tempfile.mkdtemp(prefix="repro-saturation-"))


def _sweep(key: str):
    job = Job(
        "saturation_sweep",
        {"family": key, "size": 64, "rates": RATES, "duration": 96, "seed": 0},
    )
    result = run_sweep([job], store=_STORE)
    assert result.ok, result.errors()
    points = [SaturationPoint(**p) for p in result.values[0]["points"]]
    return family_spec(key).build_with_size(64), points


@pytest.mark.parametrize("key", FAMILIES)
def test_plateau_exists(key, benchmark):
    m, pts = benchmark.pedantic(_sweep, args=(key,), rounds=1, iterations=1)
    delivered = [p.delivered_rate for p in pts]
    # The last doubling of offered load gains little delivered rate.
    assert delivered[-1] <= 1.6 * delivered[-3], (key, delivered)


def test_family_ordering_at_saturation(benchmark):
    def plateau():
        return {k: max(p.delivered_rate for p in _sweep(k)[1]) for k in FAMILIES}

    sat = benchmark.pedantic(plateau, rounds=1, iterations=1)
    assert sat["de_bruijn"] > sat["mesh_2"] > sat["xtree"] > sat["linear_array"]


@pytest.mark.parametrize("key", ["linear_array", "xtree"])
def test_latency_blowup_above_saturation(key, benchmark):
    _, pts = _sweep(key)
    assert pts[-1].mean_latency > 2.5 * pts[0].mean_latency, key


@pytest.mark.parametrize("key", FAMILIES)
def test_plateau_matches_batch_beta(key, benchmark):
    m, pts = _sweep(key)
    plateau = max(p.delivered_rate for p in pts)
    batch = measure_bandwidth(m, seed=0).rate
    assert batch / 4 <= plateau <= batch * 4, (key, plateau, batch)


def test_saturation_print(benchmark):
    rows = []
    for key in FAMILIES:
        _, pts = _sweep(key)
        for p in pts:
            rows.append(
                (
                    key,
                    f"{p.offered_rate:5.2f}",
                    f"{p.delivered_rate:8.2f}",
                    f"{p.mean_latency:8.1f}",
                    f"{p.p99_latency:8.1f}",
                )
            )
    emit(
        format_table(
            ["family", "offered r", "delivered/tick", "mean latency", "p99"],
            rows,
            title="Offered-load sweeps at n ~ 64 (open-loop injection)",
        )
    )
