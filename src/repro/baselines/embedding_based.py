"""Dilation lower bounds from graph-embedding results.

Embedding-style (non-redundant) emulations suffer slowdown at least the
dilation of the underlying embedding:

* Hong-Mehlhorn-Rosenberg [6]: embedding a complete ternary tree into a
  complete binary tree with expansion < 2 needs dilation
  ``Omega(lg lg lg n)``;
* Bhatt-Chung-Hong-Leighton-Rosenberg [2]: embedding a non-tree planar
  graph into a butterfly needs dilation ``Omega(lg (Z(G)/O(G)))`` where
  Z is the 1/3-2/3 separator size and O the largest interior face --
  giving ``Omega(lg lg n)`` for X-trees and ``Omega(lg n)`` for meshes.

The paper cites these to stress that *redundant* emulations evade them
(a butterfly can emulate a same-size mesh efficiently despite the
``Omega(lg n)`` dilation bound), so they are the right baseline to show
where bandwidth bounds and embedding bounds genuinely differ.
"""

from __future__ import annotations

from repro.asymptotics import LogPoly

__all__ = [
    "ternary_in_binary_dilation_bound",
    "bhatt_butterfly_dilation_bound",
]


def ternary_in_binary_dilation_bound() -> LogPoly:
    """Dilation Omega(lglglg n) for ternary-into-binary tree embedding."""
    return LogPoly.log(level=3)


def bhatt_butterfly_dilation_bound(guest: str) -> LogPoly:
    """Dilation bound for embedding ``guest`` into a butterfly.

    Supported guests: ``"xtree"`` -> Omega(lglg n); ``"mesh_2"`` (any
    non-tree planar mesh) -> Omega(lg n).
    """
    if guest == "xtree":
        return LogPoly.log(level=2)
    if guest.startswith("mesh"):
        return LogPoly.log(level=1)
    raise ValueError(
        f"no Bhatt et al. bound implemented for guest {guest!r} "
        "(use 'xtree' or 'mesh_*')"
    )
