"""Spectral diagnostics: algebraic connectivity and Cheeger bounds.

Used by the ablation bench to sanity-check the combinatorial cut bounds:
the Cheeger inequality brackets the edge expansion ``h(G)`` by

    lambda_2 / 2  <=  h(G)  <=  sqrt(2 * d_max * lambda_2)

and a balanced cut of expansion ``h`` has ``~h * n / 2`` links, tying the
spectrum to the flux bound on bandwidth.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse.linalg as spla
from scipy.sparse import csgraph

from repro.topologies.base import Machine
from repro.util.quiet import quiet_numerics

__all__ = ["algebraic_connectivity", "cheeger_bounds"]


def algebraic_connectivity(machine: Machine) -> float:
    """Second-smallest Laplacian eigenvalue (lambda_2)."""
    n = machine.num_nodes
    adj = nx.to_scipy_sparse_array(machine.graph, format="csr", dtype=float)
    lap = csgraph.laplacian(adj)
    if n <= 400:
        vals = np.linalg.eigvalsh(lap.toarray())
        return float(vals[1])
    with quiet_numerics():
        vals = spla.eigsh(
            lap.tocsr().astype(float),
            k=2,
            sigma=-1e-3,
            which="LM",
            return_eigenvectors=False,
            maxiter=5000,
        )
    return float(sorted(vals)[1])


def cheeger_bounds(machine: Machine) -> tuple[float, float]:
    """(lower, upper) bounds on the edge expansion h(G) via Cheeger."""
    lam2 = max(0.0, algebraic_connectivity(machine))
    lower = lam2 / 2.0
    upper = float(np.sqrt(2.0 * machine.max_degree * lam2))
    return lower, upper
