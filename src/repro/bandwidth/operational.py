"""Operational bandwidth -- re-export of the routing-simulator measurement.

Kept as its own module so the three definitions of bandwidth (closed
form, graph-theoretic, operational) all live behind the
``repro.bandwidth`` namespace, mirroring the paper's Theorem 6.
"""

from repro.routing.measure import BandwidthMeasurement, measure_bandwidth

__all__ = ["BandwidthMeasurement", "measure_bandwidth"]
